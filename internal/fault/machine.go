package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"crophe/internal/arch"
	"crophe/internal/mem"
	"crophe/internal/noc"
	"crophe/internal/telemetry"
)

// bufBanks mirrors the simulator's global-buffer bank count.
const bufBanks = mem.GlobalBufBanks

// ErrMachineDead is the sentinel for fault plans that leave no feasible
// machine at all: every PE row failed, or the surviving mesh is
// partitioned so live PEs cannot reach each other.
var ErrMachineDead = errors.New("fault: machine dead")

// Machine binds a fault plan to a hardware configuration and serves the
// degraded view each layer consumes. Build one with NewMachine, which
// validates feasibility up front.
type Machine struct {
	Base *arch.HWConfig
	Plan Plan

	eff *arch.HWConfig
}

// NewMachine validates the plan against the configuration and returns
// the bound machine. Plans that leave no feasible machine (every row
// failed, mesh partitioned between surviving PEs) fail with an error
// matching ErrMachineDead that carries the fault seed.
func NewMachine(hw *arch.HWConfig, plan Plan) (*Machine, error) {
	m := &Machine{Base: hw, Plan: plan}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.eff = hw.Derate(plan.Derating())
	return m, nil
}

// Validate checks that the degraded machine can still execute anything:
// at least one PE row alive, surviving rows mutually reachable over the
// surviving mesh, at least one buffer bank, non-zero HBM bandwidth.
func (m *Machine) Validate() error {
	p := &m.Plan
	if len(p.FailedRows) >= p.MeshH && p.MeshH > 0 {
		return fmt.Errorf("fault: plan (seed %d) failed every PE row (%d of %d): %w",
			p.Seed, len(p.FailedRows), p.MeshH, ErrMachineDead)
	}
	if p.DeadBanks+len(p.QuarantinedBanks) >= bufBanks {
		return fmt.Errorf("fault: plan (seed %d) disabled or quarantined every global-buffer bank: %w",
			p.Seed, ErrMachineDead)
	}
	if p.HBMFrac <= 0 {
		return fmt.Errorf("fault: plan (seed %d) throttled HBM to zero: %w", p.Seed, ErrMachineDead)
	}
	if p.LaneFrac >= 1 {
		return fmt.Errorf("fault: plan (seed %d) degraded every lane: %w", p.Seed, ErrMachineDead)
	}
	// Connectivity: every PE in a surviving row must reach a reference
	// live PE over the surviving links (routers in failed rows still
	// forward, so only links can partition the mesh).
	if len(p.DeadLinks) > 0 {
		mesh, err := noc.NewMesh(p.MeshW, p.MeshH, 64, 1)
		if err != nil {
			return fmt.Errorf("fault: plan (seed %d) mesh: %w", p.Seed, err)
		}
		if err := m.ApplyToMesh(mesh); err != nil {
			return err
		}
		failed := m.FailedRows()
		var ref *noc.Coord
		for y := 0; y < p.MeshH; y++ {
			if failed[y] {
				continue
			}
			for x := 0; x < p.MeshW; x++ {
				c := noc.Coord{X: x, Y: y}
				if ref == nil {
					ref = &c
					continue
				}
				if _, err := mesh.Route(*ref, c); err != nil {
					return fmt.Errorf("fault: plan (seed %d) partitions the mesh: PE %v unreachable from %v: %w",
						p.Seed, c, *ref, ErrMachineDead)
				}
			}
		}
	}
	return nil
}

// EffectiveHW returns the derated configuration the scheduler searches
// on — its analytical model sees fewer PEs/lanes/banks and less
// bandwidth, so degraded-mode schedules fall out of the normal search.
func (m *Machine) EffectiveHW() *arch.HWConfig {
	if m.eff == nil {
		m.eff = m.Base.Derate(m.Plan.Derating())
	}
	return m.eff
}

// FailedRows returns the failed mesh rows as a set, for the mapper to
// place groups around.
func (m *Machine) FailedRows() map[int]bool {
	out := make(map[int]bool, len(m.Plan.FailedRows))
	for _, r := range m.Plan.FailedRows {
		out[r] = true
	}
	return out
}

// ApplyToMesh installs the plan's dead and slowed links into a mesh
// model. The mesh must match the plan's geometry.
func (m *Machine) ApplyToMesh(mesh *noc.Mesh) error {
	if mesh.W != m.Plan.MeshW || mesh.H != m.Plan.MeshH {
		return fmt.Errorf("fault: plan (seed %d) is for a %dx%d mesh, got %dx%d",
			m.Plan.Seed, m.Plan.MeshW, m.Plan.MeshH, mesh.W, mesh.H)
	}
	for _, l := range m.Plan.DeadLinks {
		if err := mesh.DisableLink(l.From, l.Dir); err != nil {
			return fmt.Errorf("fault: plan (seed %d) dead link %v/%c: %w", m.Plan.Seed, l.From, l.Dir, err)
		}
	}
	for _, l := range m.Plan.SlowLinks {
		if err := mesh.SlowLink(l.From, l.Dir, l.Factor); err != nil {
			return fmt.Errorf("fault: plan (seed %d) slow link %v/%c: %w", m.Plan.Seed, l.From, l.Dir, err)
		}
	}
	return nil
}

// ApplyToHBM throttles an HBM model to the plan's surviving bandwidth.
func (m *Machine) ApplyToHBM(h *mem.HBM) error {
	if m.Plan.HBMFrac >= 1 {
		return nil
	}
	if err := h.Throttle(m.Plan.HBMFrac); err != nil {
		return fmt.Errorf("fault: plan (seed %d) HBM throttle: %w", m.Plan.Seed, err)
	}
	return nil
}

// ApplyToSRAM disables the plan's dead banks in a buffer model, plus
// the quarantined ones — once the integrity layer escalates a bank's
// persistent corruption, the simulator stops scheduling traffic to it
// exactly as if the bank were structurally disabled.
func (m *Machine) ApplyToSRAM(s *mem.SRAM) error {
	down := m.Plan.DeadBanks + len(m.Plan.QuarantinedBanks)
	if down == 0 {
		return nil
	}
	if err := s.DisableBanks(down); err != nil {
		return fmt.Errorf("fault: plan (seed %d) buffer banks: %w", m.Plan.Seed, err)
	}
	return nil
}

// StallSampler returns a fresh seeded sampler over the plan's transient
// stalls. The simulator queries it once per simulated group; given the
// same group sequence, the injected stalls are identical on every run.
func (m *Machine) StallSampler() *StallSampler {
	return &StallSampler{
		events: append([]Stall(nil), m.Plan.Stalls...),
		prob:   m.Plan.StallProb,
		nomDur: m.Plan.Spec.StallCycles,
		rng:    dimRand(m.Plan.Seed, saltStalls+1),
	}
}

// StallSampler deals out the plan's transient stall events: the fixed
// events first (one per query until exhausted), then probabilistic
// stalls at the plan's per-group probability.
type StallSampler struct {
	events []Stall
	next   int
	prob   float64
	nomDur float64
	rng    *rand.Rand

	total float64
	count int
}

// Next returns the stall cycles to inject at this query point (0 for
// no stall).
func (ss *StallSampler) Next() float64 {
	var cycles float64
	if ss.next < len(ss.events) {
		cycles = ss.events[ss.next].Cycles
		ss.next++
	} else if ss.prob > 0 && ss.rng.Float64() < ss.prob {
		dur := ss.nomDur
		if dur <= 0 {
			dur = 100
		}
		cycles = dur * (0.5 + ss.rng.Float64())
	}
	if cycles > 0 {
		ss.total += cycles
		ss.count++
	}
	return cycles
}

// Injected reports the stalls dealt so far (count, total cycles).
func (ss *StallSampler) Injected() (int, float64) { return ss.count, ss.total }

// EmitCounters publishes the plan as telemetry counters under fault/*.
func (m *Machine) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	p := &m.Plan
	c.EmitCounter("fault/seed", float64(p.Seed))
	c.EmitCounter("fault/failed_rows", float64(len(p.FailedRows)))
	c.EmitCounter("fault/dead_links", float64(len(p.DeadLinks)))
	c.EmitCounter("fault/slow_links", float64(len(p.SlowLinks)))
	c.EmitCounter("fault/dead_banks", float64(p.DeadBanks))
	c.EmitCounter("fault/hbm_frac", p.HBMFrac)
	c.EmitCounter("fault/lane_frac", p.LaneFrac)
	c.EmitCounter("fault/stall_events", float64(len(p.Stalls)))
	c.EmitCounter("fault/flip_rate", p.FlipRate)
	c.EmitCounter("fault/scrub_period", float64(p.ScrubPeriod))
	c.EmitCounter("fault/quarantined_banks", float64(len(p.QuarantinedBanks)))
}

// Describe renders a one-line human summary of the degraded machine.
func (m *Machine) Describe() string {
	p := &m.Plan
	return fmt.Sprintf("%s under %q (seed %d): %d/%d rows down, %d dead + %d slow links, %d/%d banks down (%d quarantined), HBM %.0f%% — effective PEs %d, lanes %d",
		m.Base.Name, p.Spec.String(), p.Seed,
		len(p.FailedRows), p.MeshH, len(p.DeadLinks), len(p.SlowLinks),
		p.DeadBanks+len(p.QuarantinedBanks), bufBanks, len(p.QuarantinedBanks), p.HBMFrac*100,
		m.EffectiveHW().NumPEs, m.EffectiveHW().Lanes)
}

package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/leakcheck"
)

// fakeRunner is a deterministic stand-in for the simulator: time grows
// with the fault count, so the sweep shape is stable across runs.
func fakeRunner(m *Machine) (Outcome, error) {
	return Outcome{TimeSec: 1e-3 * float64(1+m.Plan.FaultCount())}, nil
}

// TestResumeSweepMatchesSweep: the sequential resumable form must produce
// exactly the result of the parallel one-shot form.
func TestResumeSweepMatchesSweep(t *testing.T) {
	leakcheck.Check(t)
	const seed, steps = 17, 5
	want, err := Sweep(arch.CROPHE64, seed, steps, fakeRunner)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	got, err := ResumeSweep(context.Background(), arch.CROPHE64, seed, steps, fakeRunner, nil, nil)
	if err != nil {
		t.Fatalf("ResumeSweep: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("ResumeSweep differs from Sweep:\n got %+v\nwant %+v", got, want)
	}
}

// TestResumeSweepSkipsDoneSteps: journaled points are spliced in verbatim
// and their rungs are not re-run; the overall result is identical to an
// uninterrupted sweep.
func TestResumeSweepSkipsDoneSteps(t *testing.T) {
	leakcheck.Check(t)
	const seed, steps = 23, 6
	full, err := ResumeSweep(context.Background(), arch.CROPHE64, seed, steps, fakeRunner, nil, nil)
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	done := map[int]SweepPoint{
		0: full.Points[0],
		1: full.Points[1],
		2: full.Points[2],
	}
	ran := map[int]bool{}
	counting := func(m *Machine) (Outcome, error) {
		ran[m.Plan.FaultCount()] = true
		return fakeRunner(m)
	}
	var observed []int
	resumed, err := ResumeSweep(context.Background(), arch.CROPHE64, seed, steps, counting, done,
		func(pt SweepPoint) { observed = append(observed, pt.Step) })
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resumed sweep differs from uninterrupted run:\n got %+v\nwant %+v", resumed, full)
	}
	if len(ran) != steps-len(done) {
		t.Errorf("runner executed %d rungs, want %d (done steps must be skipped)", len(ran), steps-len(done))
	}
	if want := []int{3, 4, 5}; !reflect.DeepEqual(observed, want) {
		t.Errorf("observe saw steps %v, want %v", observed, want)
	}
}

// TestResumeSweepStopsBetweenRungs: a cancelled context aborts the sweep
// before the next rung starts, never mid-rung, and already-observed
// points stay intact.
func TestResumeSweepStopsBetweenRungs(t *testing.T) {
	leakcheck.Check(t)
	const seed, steps = 29, 6
	ctx, cancel := context.WithCancel(context.Background())
	var observed []SweepPoint
	cancelAfter := 2
	runner := func(m *Machine) (Outcome, error) {
		return fakeRunner(m)
	}
	_, err := ResumeSweep(ctx, arch.CROPHE64, seed, steps, runner, nil, func(pt SweepPoint) {
		observed = append(observed, pt)
		if len(observed) == cancelAfter {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v, want context.Canceled", err)
	}
	if len(observed) != cancelAfter {
		t.Fatalf("observed %d points after cancellation, want exactly %d", len(observed), cancelAfter)
	}

	// Resuming from the observed points completes identically to an
	// uninterrupted sweep — the crash-safety contract.
	done := map[int]SweepPoint{}
	for _, pt := range observed {
		done[pt.Step] = pt
	}
	resumed, err := ResumeSweep(context.Background(), arch.CROPHE64, seed, steps, runner, done, nil)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	full, err := ResumeSweep(context.Background(), arch.CROPHE64, seed, steps, runner, nil, nil)
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resumed-after-cancel sweep differs from uninterrupted run")
	}
}

// Package ckks is the panicpolicy fixture for a library package: bare
// panics are flagged, context-carrying panics are allowed.
package ckks

import (
	"errors"
	"fmt"
)

// Validate exercises the flagged and allowed panic forms.
func Validate(level, max int) {
	if level < 0 {
		panic("ckks: negative level") // want `bare panic in library package`
	}
	if level > max {
		panic(fmt.Sprintf("ckks: level %d exceeds max %d", level, max)) // allowed: interpolated context
	}
}

// Check panics with a naked error value, which drops the call context.
func Check(err error) {
	if err != nil {
		panic(err) // want `bare panic in library package`
	}
}

// Build panics with a constructed error that still has no interpolated
// context at the panic site.
func Build(n int) {
	if n == 0 {
		panic(errors.New("ckks: empty")) // want `bare panic in library package`
	}
	if n < 0 {
		panic(fmt.Errorf("ckks: bad size %d", n)) // allowed: fmt.Errorf carries context
	}
}

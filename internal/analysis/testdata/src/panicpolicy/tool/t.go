// Package tool is the panicpolicy fixture for a non-library package:
// commands and drivers may die loudly, so nothing here is flagged.
package tool

// Run is allowed to panic bare outside the library set.
func Run(args []string) {
	if len(args) == 0 {
		panic("usage: tool <cmd>")
	}
	if args[0] == "boom" {
		panic("tool: boom requested")
	}
}

// Package a is the releasecheck fixture: pool-token release closures and
// arena leases must be released on every path. Deferred release after the
// validity check, hand-off (return/store/pass), and tight manual release
// are accepted; early-return leaks, never-released leases, blank-discarded
// leases, and manual releases separated from the acquisition by
// panic-capable calls are flagged.
package a

import (
	"context"
	"errors"

	"crophe/internal/analysis/testdata/src/releasecheck/parallel"
)

// arena is the scratch-lease shape: a pointer type with a niladic
// release method.
type arena struct{ buf []byte }

func (a *arena) alloc(n int) []byte { return make([]byte, n) }
func (a *arena) release()           {}

func getArena() *arena { return &arena{} }

func work()        {}
func use(b []byte) {}

// deferred is the canonical form: validity check, then defer.
func deferred(ctx context.Context, q *parallel.Queue) error {
	release, err := q.Acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	work()
	return nil
}

// earlyReturn leaks the token on the bail-out path.
func earlyReturn(ctx context.Context, q *parallel.Queue, fail bool) error {
	release, err := q.Acquire(ctx)
	if err != nil {
		return err
	}
	if fail {
		return errors.New("bail") // want `leaks on this return path`
	}
	release()
	return nil
}

// manualLate is the hoisting pre-fix shape: the trailing release leaks if
// anything in between panics.
func manualLate(n int) {
	a := getArena()
	buf := a.alloc(n)
	use(buf)
	a.release() // want `released without defer`
}

// manualTight releases immediately — nothing can panic in between.
func manualTight() {
	a := getArena()
	a.release()
}

// arenaLost is never released at all.
func arenaLost(n int) {
	a := getArena() // want `never released on this path`
	a.alloc(n)
	work()
}

// discard throws the release closure away: the token is gone for good.
func discard(ctx context.Context, q *parallel.Queue) {
	_, err := q.Acquire(ctx) // want `blank identifier`
	_ = err
}

// tryDeferred is the if-scoped form of the canonical pattern.
func tryDeferred(q *parallel.Queue) bool {
	if release, ok := q.TryAcquire(); ok {
		defer release()
		work()
		return true
	}
	return false
}

// tryManualLate repeats the panic-window hazard inside the valid branch.
func tryManualLate(q *parallel.Queue) {
	if release, ok := q.TryAcquire(); ok {
		work()
		release() // want `released without defer`
	}
}

// tryInverted guards the failure branch and lets the valid lease fall
// out of scope.
func tryInverted(q *parallel.Queue) {
	if release, ok := q.TryAcquire(); !ok { // want `goes out of scope without a release path`
		_ = release
		return
	}
}

// acquireSlot forwards the token to its caller — the facts layer marks it
// lease-returning, so callers inherit the obligation.
func acquireSlot(ctx context.Context, q *parallel.Queue) (func(), error) {
	if release, ok := q.TryAcquire(); ok {
		return release, nil
	}
	return q.Acquire(ctx)
}

// callerDeferred discharges the inherited obligation with defer.
func callerDeferred(ctx context.Context, q *parallel.Queue) error {
	release, err := acquireSlot(ctx, q)
	if err != nil {
		return err
	}
	defer release()
	work()
	return nil
}

// callerLeaks inherits the obligation through acquireSlot and drops it on
// the bail-out path.
func callerLeaks(ctx context.Context, q *parallel.Queue, fail bool) error {
	release, err := acquireSlot(ctx, q)
	if err != nil {
		return err
	}
	if fail {
		return errors.New("bail") // want `leaks on this return path`
	}
	release()
	return nil
}

// holder takes ownership of the arena; escape transfers the obligation.
type holder struct{ a *arena }

func escapes() *holder {
	a := getArena()
	return &holder{a: a}
}

// Package parallel mirrors the production pool's lease surface for the
// releasecheck fixture: names and shapes match crophe/internal/parallel,
// which is all the analyzer's package-name matching needs.
package parallel

import "context"

// Queue is the bounded admission semaphore stand-in.
type Queue struct{ ch chan struct{} }

// Acquire blocks for a token and returns its release closure.
func (q *Queue) Acquire(ctx context.Context) (func(), error) { return func() {}, nil }

// TryAcquire takes a token only if one is free.
func (q *Queue) TryAcquire() (func(), bool) { return func() {}, true }

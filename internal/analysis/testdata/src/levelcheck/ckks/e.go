// Package ckks is the levelcheck fixture: Evaluator methods that combine
// two ciphertext operands must guard level/scale compatibility first.
package ckks

// Ciphertext mimics the real operand shape.
type Ciphertext struct {
	Level int
	Scale float64
}

// Evaluator mimics the real evaluator.
type Evaluator struct{}

func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level > b.Level {
		return &Ciphertext{Level: b.Level, Scale: a.Scale}, b
	}
	return a, b
}

func checkScales(s0, s1 float64) bool { return s0 == s1 }

// AddBad combines without any guard.
func (ev *Evaluator) AddBad(ct0, ct1 *Ciphertext) *Ciphertext { // want `without a level/scale guard`
	return &Ciphertext{Level: ct0.Level, Scale: ct0.Scale}
}

// MulBad reads both operands' payloads with no guard.
func (ev *Evaluator) MulBad(ct0, ct1 *Ciphertext) *Ciphertext { // want `without a level/scale guard`
	out := &Ciphertext{Level: ct0.Level, Scale: ct0.Scale * ct1.Scale}
	return out
}

// SubBad compares a level against a constant, which is not a compatibility
// check between the two operands.
func (ev *Evaluator) SubBad(ct0, ct1 *Ciphertext) *Ciphertext { // want `without a level/scale guard`
	if ct0.Level > 0 {
		return ct0
	}
	return ct1
}

// AddGood guards by delegating to alignLevels.
func (ev *Evaluator) AddGood(ct0, ct1 *Ciphertext) *Ciphertext {
	ct0, ct1 = ev.alignLevels(ct0, ct1)
	return &Ciphertext{Level: ct0.Level, Scale: ct0.Scale}
}

// MulGood guards with an explicit cross-operand level comparison.
func (ev *Evaluator) MulGood(ct0, ct1 *Ciphertext) *Ciphertext {
	if ct0.Level != ct1.Level {
		return nil
	}
	return &Ciphertext{Level: ct0.Level, Scale: ct0.Scale * ct1.Scale}
}

// ScaleGood guards through checkScales.
func (ev *Evaluator) ScaleGood(ct0, ct1 *Ciphertext) *Ciphertext {
	if !checkScales(ct0.Scale, ct1.Scale) {
		return nil
	}
	return ct0
}

// Rescale takes a single ciphertext: out of the analyzer's scope.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	return &Ciphertext{Level: ct.Level - 1, Scale: ct.Scale}
}

// Combine is a plain function, not an Evaluator method: out of scope.
func Combine(ct0, ct1 *Ciphertext) *Ciphertext {
	return &Ciphertext{Level: ct0.Level, Scale: ct1.Scale}
}

// Package serve is the ctxbudget fixture: scheduling calls inside HTTP
// handlers must receive a request-derived context. It imports the real
// net/http so parameter-type matching runs against the production type.
package serve

import (
	"context"
	"net/http"
	"time"
)

// The scheduling stack's shape: ctx-first callables whose names mention
// Schedule, Simulate, or Sweep.
func scheduleWorkload(ctx context.Context, name string) float64 { _ = ctx; _ = name; return 0 }
func simulateDegraded(ctx context.Context, seed int64) float64  { _ = ctx; _ = seed; return 0 }
func resumeSweep(ctx context.Context, steps int) float64        { _ = ctx; _ = steps; return 0 }

// scheduleMemoStats takes no context: out of the analyzer's scope.
func scheduleMemoStats() int { return 0 }

// requestBudget mimics the serving layer's helper: it takes the request,
// so its returned context counts as request-derived.
func requestBudget(r *http.Request, ms int) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
}

// GoodDirect threads r.Context() straight through.
func GoodDirect(w http.ResponseWriter, r *http.Request) {
	scheduleWorkload(r.Context(), "helr")
}

// GoodDerived chains context.With* off the request.
func GoodDerived(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	simulateDegraded(ctx, 1)
}

// GoodHelper derives through a helper that takes the request.
func GoodHelper(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := requestBudget(r, 10)
	defer cancel()
	resumeSweep(ctx, 4)
}

// GoodChained re-derives from an already request-derived context.
func GoodChained(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	inner, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	scheduleWorkload(inner, "helr")
}

// GoodNoCtx: scheduling-named calls without a context argument are out
// of scope (the memo path is deliberately deadline-free).
func GoodNoCtx(w http.ResponseWriter, r *http.Request) {
	_ = scheduleMemoStats()
}

// BadBackground severs the deadline path entirely.
func BadBackground(w http.ResponseWriter, r *http.Request) {
	scheduleWorkload(context.Background(), "helr") // want `non-request context`
}

// BadTODO is Background with a fig leaf.
func BadTODO(w http.ResponseWriter, r *http.Request) {
	simulateDegraded(context.TODO(), 1) // want `non-request context`
}

// BadFreshChain derives a context — but roots it at Background, not the
// request, so the client's deadline still never arrives.
func BadFreshChain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resumeSweep(ctx, 4) // want `non-request context`
}

// BadLiteralHandler: http.HandlerFunc literals are handlers too.
func BadLiteralHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		scheduleWorkload(context.Background(), "helr") // want `non-request context`
	})
}

// jobRunner is not a handler: background jobs legitimately run under the
// manager's own lifetime, not a request's.
func jobRunner(steps int) {
	resumeSweep(context.Background(), steps)
}

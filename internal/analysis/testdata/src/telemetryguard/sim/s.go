// Package sim is the telemetryguard fixture: EmitSpan/EmitCounter calls
// on a telemetry.Collector must be dominated by an Enabled() guard on the
// same receiver. It imports the real collector so receiver-type matching
// is exercised against the production type.
package sim

import (
	"fmt"

	"crophe/internal/telemetry"
)

// Engine mimics the simulator's shape: a collector behind a field.
type Engine struct {
	tel *telemetry.Collector
}

// UnguardedSpan pays fmt.Sprintf even when telemetry is off.
func UnguardedSpan(c *telemetry.Collector, row int) {
	c.EmitSpan("PE", fmt.Sprintf("row %d", row), "g0", 0, 10) // want `unguarded telemetry emission`
}

// UnguardedCounter has no guard at all.
func UnguardedCounter(c *telemetry.Collector) {
	c.EmitCounter("noc/sends", 1) // want `unguarded telemetry emission`
}

// WrongReceiverGuard guards a, then emits on b.
func WrongReceiverGuard(a, b *telemetry.Collector) {
	if a.Enabled() {
		b.EmitCounter("x", 1) // want `unguarded telemetry emission`
	}
}

// ElseBranch emits on the disabled branch of the guard.
func ElseBranch(c *telemetry.Collector) {
	if c.Enabled() {
		c.EmitCounter("ok", 1)
	} else {
		c.EmitCounter("bad", 1) // want `unguarded telemetry emission`
	}
}

// GuardDoesNotOutliveBlock: the early-return guard only covers its own
// block, not siblings of the enclosing scope.
func GuardDoesNotOutliveBlock(c *telemetry.Collector, deep bool) {
	if deep {
		if !c.Enabled() {
			return
		}
		c.EmitCounter("ok", 1)
	}
	c.EmitCounter("bad", 1) // want `unguarded telemetry emission`
}

// PositiveGuard is the canonical hot-path form.
func PositiveGuard(c *telemetry.Collector, row int) {
	if c.Enabled() {
		c.EmitSpan("PE", fmt.Sprintf("row %d", row), "g0", 0, 10)
		for i := 0; i < row; i++ {
			c.EmitCounter("spans", 1)
		}
	}
}

// ConjunctionGuard keeps the guard inside an && chain.
func ConjunctionGuard(c *telemetry.Collector, hot bool) {
	if hot && c.Enabled() {
		c.EmitCounter("hot", 1)
	}
}

// EarlyReturnGuard is the canonical whole-function form (noc/mem style).
func EarlyReturnGuard(c *telemetry.Collector, links int) {
	if !c.Enabled() {
		return
	}
	for i := 0; i < links; i++ {
		c.EmitCounter(fmt.Sprintf("noc/link/%d", i), 1)
	}
	c.EmitSpan("NoC", "links", "drain", 0, float64(links))
}

// FieldReceiver guards and emits through a struct field (the sched
// pattern s.tel).
func (e *Engine) FieldReceiver(n int) {
	if e.tel.Enabled() {
		e.tel.EmitCounter("sched/candidates", float64(n))
	}
	e.tel.EmitCounter("sched/pruned", 1) // want `unguarded telemetry emission`
}

// NestedClosure inherits the lexical guard: enablement is immutable, so
// the closure created inside the guard stays guarded.
func NestedClosure(c *telemetry.Collector) func() {
	if c.Enabled() {
		return func() { c.EmitCounter("deferred", 1) }
	}
	return func() {}
}

// Package a is the modarith fixture: raw word arithmetic on values that
// flow from modmath.Modulus must be flagged; helper calls and untainted
// integer arithmetic must not.
package a

import "crophe/internal/modmath"

// badDirect exercises the three flagged operators on directly tainted
// operands.
func badDirect(m modmath.Modulus, a, b uint64) uint64 {
	s := a + m.Q // want `raw \+ on a modmath residue`
	d := m.Q - b // want `raw - on a modmath residue`
	p := a * m.Q // want `raw \* on a modmath residue`
	_, _ = s, d
	return p
}

// badPropagated exercises taint propagation through local assignments and
// residue-producing helper results.
func badPropagated(m modmath.Modulus, a, b uint64) uint64 {
	q := m.Q
	r := m.Mul(a, b)
	s := a + q // want `raw \+ on a modmath residue`
	t := r * 2 // want `raw \* on a modmath residue`
	_ = s
	return t
}

// badCompound exercises the compound assignment forms.
func badCompound(m modmath.Modulus, a uint64) uint64 {
	acc := m.Reduce(a)
	acc += m.Q // want `raw \+= on a modmath residue`
	acc *= 3   // want `raw \*= on a modmath residue`
	return acc
}

// goodHelpers stays entirely inside the Modulus helper API: nothing to
// report.
func goodHelpers(m modmath.Modulus, a, b uint64) uint64 {
	s := m.Add(a, b)
	p := m.Mul(s, b)
	return m.Sub(p, m.Neg(a))
}

// goodUntainted performs raw arithmetic on plain integers that never touch
// a Modulus: loop bounds, indices, sizes. Nothing to report.
func goodUntainted(n int, xs []uint64) uint64 {
	total := uint64(0)
	for i := 0; i < n*2; i++ {
		total = xs[i%len(xs)] // raw index math is fine
	}
	half := n/2 + 1
	return total + uint64(half)
}

// goodLaundered shows that comparisons and division on residues are
// allowed (that is how residues are legitimately consumed).
func goodLaundered(m modmath.Modulus, a uint64) bool {
	return a > m.Q/2
}

// BadLazyEscape returns an uncorrected 2q-residue from an exported
// function: the positive case for the lazy-escape check.
func BadLazyEscape(m modmath.Modulus, a, w, ws uint64) uint64 {
	t := m.MulShoupLazy(a, w, ws)
	return t // want `lazy 2q-residue escapes exported function BadLazyEscape`
}

// BadLazyEscapeDirect returns the lazy producer call directly, with no
// intermediate local to taint.
func BadLazyEscapeDirect(m modmath.Modulus, a, b uint64) uint64 {
	return m.AddLazy(a, b) // want `lazy 2q-residue escapes exported function BadLazyEscapeDirect`
}

// BadButterflyEscape leaks both halves of a butterfly result; one report
// per return statement.
func BadButterflyEscape(m modmath.Modulus, u, v, w, ws uint64) (uint64, uint64) {
	x, y := m.CTButterflyLazy(u, v, w, ws)
	return x, y // want `lazy 2q-residue escapes exported function BadButterflyEscape`
}

// GoodLazyCorrected brings the redundant residue back to canonical range
// before it crosses the API boundary: nothing to report.
func GoodLazyCorrected(m modmath.Modulus, a, w, ws uint64) uint64 {
	t := m.MulShoupLazy(a, w, ws)
	return m.CorrectLazy(t)
}

// GoodButterflyReduced corrects a 4q butterfly output with ReduceFourQ.
func GoodButterflyReduced(m modmath.Modulus, u, v, w, ws uint64) uint64 {
	x, _ := m.CTButterflyLazy(u, v, w, ws)
	return m.ReduceFourQ(x)
}

// MulRowLazy is exported but advertises the redundant-range contract in
// its name, so lazy results may flow out.
func MulRowLazy(m modmath.Modulus, a, w, ws uint64) uint64 {
	return m.MulShoupLazy(a, w, ws)
}

// accumulateLazy is unexported: intra-package helpers may hand redundant
// residues to their callers.
func accumulateLazy(m modmath.Modulus, a, b uint64) uint64 {
	return m.AddLazy(a, b)
}

// badLazyRawOp shows the lazy producers joining the ordinary residue
// taint: raw word arithmetic on their results is flagged like any other
// residue.
func badLazyRawOp(m modmath.Modulus, a, w, ws uint64) uint64 {
	t := m.MulShoupLazy(a, w, ws)
	u := t + 1 // want `raw \+ on a modmath residue`
	return u % m.Q
}

// Package a is the modarith fixture: raw word arithmetic on values that
// flow from modmath.Modulus must be flagged; helper calls and untainted
// integer arithmetic must not.
package a

import "crophe/internal/modmath"

// badDirect exercises the three flagged operators on directly tainted
// operands.
func badDirect(m modmath.Modulus, a, b uint64) uint64 {
	s := a + m.Q // want `raw \+ on a modmath residue`
	d := m.Q - b // want `raw - on a modmath residue`
	p := a * m.Q // want `raw \* on a modmath residue`
	_, _ = s, d
	return p
}

// badPropagated exercises taint propagation through local assignments and
// residue-producing helper results.
func badPropagated(m modmath.Modulus, a, b uint64) uint64 {
	q := m.Q
	r := m.Mul(a, b)
	s := a + q // want `raw \+ on a modmath residue`
	t := r * 2 // want `raw \* on a modmath residue`
	_ = s
	return t
}

// badCompound exercises the compound assignment forms.
func badCompound(m modmath.Modulus, a uint64) uint64 {
	acc := m.Reduce(a)
	acc += m.Q // want `raw \+= on a modmath residue`
	acc *= 3   // want `raw \*= on a modmath residue`
	return acc
}

// goodHelpers stays entirely inside the Modulus helper API: nothing to
// report.
func goodHelpers(m modmath.Modulus, a, b uint64) uint64 {
	s := m.Add(a, b)
	p := m.Mul(s, b)
	return m.Sub(p, m.Neg(a))
}

// goodUntainted performs raw arithmetic on plain integers that never touch
// a Modulus: loop bounds, indices, sizes. Nothing to report.
func goodUntainted(n int, xs []uint64) uint64 {
	total := uint64(0)
	for i := 0; i < n*2; i++ {
		total = xs[i%len(xs)] // raw index math is fine
	}
	half := n/2 + 1
	return total + uint64(half)
}

// goodLaundered shows that comparisons and division on residues are
// allowed (that is how residues are legitimately consumed).
func goodLaundered(m modmath.Modulus, a uint64) bool {
	return a > m.Q/2
}

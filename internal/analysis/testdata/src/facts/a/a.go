// Package a exercises the facts layer: call-graph construction through
// direct calls, mutual recursion, cycles and method values, plus the
// blocking/ordered-sink/lease summaries the transitive queries close
// over. It carries no want comments — facts_test.go asserts against the
// computed fact set directly.
package a

import "fmt"

// --- blocking, three helpers deep ---

func blockDirect(ch chan int) { <-ch }

func blockMiddle(ch chan int) { blockDirect(ch) }

func blockTop(ch chan int) { blockMiddle(ch) }

// --- mutual recursion with a block inside the cycle ---

func pingPongA(n int, ch chan int) {
	if n > 0 {
		pingPongB(n-1, ch)
	}
}

func pingPongB(n int, ch chan int) {
	ch <- n
	pingPongA(n, ch)
}

// --- a pure cycle with no facts anywhere: queries must terminate ---

func cycleA(n int) {
	if n > 0 {
		cycleB(n - 1)
	}
}

func cycleB(n int) { cycleA(n) }

// selfLoop recurses directly and never blocks.
func selfLoop(n int) {
	if n > 0 {
		selfLoop(n - 1)
	}
}

// --- method values: using a method as a value still adds the edge ---

type emitter struct{}

func (emitter) emit() { fmt.Println("row") }

func methodValue(e emitter) {
	f := e.emit
	f()
}

// --- ordered sink through a helper ---

func sinkHelper() { fmt.Print("x") }

func sinkTop() { sinkHelper() }

// quiet has no facts at all.
func quiet(a, b int) int { return a + b }

// --- leases ---

type lease struct{}

func (l *lease) release() {}

func takeLease() *lease { return &lease{} }

// forward hands the lease to its caller (ReturnsLease fixpoint, depth 2).
func forward() *lease { return takeLease() }

func forwardTwice() *lease {
	l := forward()
	return l
}

// consume acquires and releases locally: not lease-returning.
func consume() {
	l := takeLease()
	l.release()
}

// deferredOps: operations inside go/defer do not block this frame.
func deferredOps(ch chan int) {
	defer func() { <-ch }()
	go blockDirect(ch)
}

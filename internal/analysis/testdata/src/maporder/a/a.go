// Package a is the maporder fixture: range-over-map bodies feeding
// order-sensitive sinks (unsorted collection, stream writes, span
// emission, non-associative accumulation) must be flagged; sorted
// collection, commutative accumulation, and loop-local targets must not.
package a

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"crophe/internal/telemetry"
)

// collectUnsorted is the pre-fix shape of the scheduler's aux-tensor
// collection: element order follows map order.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration without a deterministic sort`
	}
	return out
}

// collectSorted is the collect-then-sort idiom: deterministic.
func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// printDirect streams rows in map order.
func printDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration feeds fmt.Fprintf`
	}
}

// emitRow is a helper the facts layer must see through.
func emitRow(w io.Writer, k string) {
	fmt.Fprintf(w, "row %s\n", k)
}

func printViaHelper(w io.Writer, m map[string]int) {
	for k := range m {
		emitRow(w, k) // want `feeds fmt.Fprintf via emitRow`
	}
}

// buffered accumulates bytes in map order — same hazard, method form.
func buffered(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `map iteration feeds Buffer.WriteString`
	}
	return b.String()
}

// spans serialise in emission order, so emitting from a map range makes
// the trace differ run to run.
func spans(tel *telemetry.Collector, m map[string]float64) {
	if !tel.Enabled() {
		return
	}
	for k, v := range m {
		tel.EmitSpan("PE", "lane", k, v, 1) // want `map iteration feeds telemetry span emission`
	}
}

// counters accumulate commutatively and export name-sorted: no finding.
func counters(tel *telemetry.Collector, m map[string]float64) {
	if !tel.Enabled() {
		return
	}
	for k, v := range m {
		tel.EmitCounter(k, v)
	}
}

// sumFloat rounds differently per iteration order.
func sumFloat(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// sumInt is exact and commutative: no finding.
func sumInt(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// scaleInPlace writes through the loop's own value variable — each map
// entry is independent, so order cannot matter: no finding.
func scaleInPlace(m map[string][]complex128, s complex128) {
	for _, row := range m {
		for j := range row {
			row[j] *= s
		}
	}
}

// accumulateComplex sums diagonals into an outer vector (the boot
// LinearTransform.Apply pre-fix shape).
func accumulateComplex(m map[int][]complex128, out []complex128) {
	for _, row := range m {
		for j := range out {
			out[j] += row[j] // want `complex accumulation into out`
		}
	}
}

// concat's result depends on concatenation order.
func concat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string accumulation into s`
	}
	return s
}

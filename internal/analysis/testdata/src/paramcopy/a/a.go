// Package a is the paramcopy fixture: by-value mutation of config structs
// and goroutine mutation through shared config pointers are flagged;
// pointer mutation and clone-then-mutate are not.
package a

// HWConfig mimics arch.HWConfig.
type HWConfig struct {
	Name           string
	SRAMCapacityMB float64
}

// Parameters mimics ckks.Parameters.
type Parameters struct {
	Scale float64
}

// Options mimics sched.Options.
type Options struct {
	Clusters int
}

// badValueParam mutates a by-value config parameter and never reads it
// again: the write is lost at the caller.
func badValueParam(c HWConfig) {
	c.SRAMCapacityMB = 64 // want `received by value`
}

// badValueReceiver mutates through a value receiver: same lost write.
func (p Parameters) badValueReceiver() {
	p.Scale = 1 << 40 // want `received by value`
}

// badOptions shows the third config type.
func badOptions(o Options) {
	o.Clusters = 4 // want `received by value`
}

// goodDefaulting normalises the value parameter and then uses it — the
// standard Go defaulting idiom, which must not be flagged.
func goodDefaulting(o Options) int {
	if o.Clusters < 1 {
		o.Clusters = 1
	}
	return o.Clusters
}

// badGoroutine mutates a shared config pointer from a goroutine.
func badGoroutine(c *HWConfig, done chan struct{}) {
	go func() {
		c.Name = "sweep" // want `shared \*HWConfig`
		close(done)
	}()
}

// goodPointer mutates through a pointer parameter: intentional in-place
// update, visible to the caller.
func goodPointer(c *HWConfig) {
	c.SRAMCapacityMB = 128
}

// goodClone mutates a private copy.
func goodClone(c HWConfig) HWConfig {
	d := c
	d.SRAMCapacityMB = 128
	return d
}

// goodGoroutineCopy dereferences into a private copy before the goroutine.
func goodGoroutineCopy(c *HWConfig, done chan struct{}) {
	d := *c
	go func() {
		d.Name = "sweep"
		close(done)
	}()
}

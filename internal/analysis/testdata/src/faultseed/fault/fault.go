// Package fault is the faultseed fixture for the fault package itself:
// every fmt.Errorf %w wrap must reference the seed, however the function
// is named.
package fault

import (
	"errors"
	"fmt"
)

// ErrMachineDead is the sentinel the wraps below carry.
var ErrMachineDead = errors.New("fault: machine dead")

// Plan is a minimal stand-in for the real fault plan.
type Plan struct{ Seed int64 }

// Validate exercises the flagged and allowed wrap forms.
func Validate(p Plan, rows int) error {
	if rows == 0 {
		return fmt.Errorf("fault: no rows left: %w", ErrMachineDead) // want `does not reference the fault seed`
	}
	if rows < 0 {
		return fmt.Errorf("fault: plan (seed %d) failed every row: %w", p.Seed, ErrMachineDead) // allowed: seed in message
	}
	return nil
}

// Wrap passes the seed as a plain argument without the word "seed" in the
// format string; naming the value is enough.
func Wrap(seed int64, err error) error {
	return fmt.Errorf("fault: plan %d broke: %w", seed, err) // allowed: seed argument interpolated
}

// Describe builds a non-wrapping error; the policy only covers %w wraps.
func Describe(n int) error {
	return fmt.Errorf("fault: %d faults injected", n) // allowed: not a wrap
}

// Apply wraps through a struct field selection.
func (p Plan) Apply(err error) error {
	if err != nil {
		return fmt.Errorf("fault: plan %d apply: %w", p.Seed, err) // allowed: .Seed selection
	}
	return nil
}

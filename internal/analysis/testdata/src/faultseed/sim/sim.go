// Package sim is the faultseed fixture for a non-fault package: only
// functions on the degraded path (*Degraded*/*Fault* names) are covered;
// healthy-path wraps stay unflagged.
package sim

import "fmt"

// SimulateDegraded is on the fault path: its wraps must carry the seed.
func SimulateDegraded(seed int64, err error) error {
	if err != nil {
		return fmt.Errorf("sim: degraded schedule: %w", err) // want `does not reference the fault seed`
	}
	return fmt.Errorf("sim: degraded schedule (fault seed %d): %w", seed, err) // allowed: seed in message
}

// applyFaults is covered by the *Fault* name rule even unexported.
func applyFaults(err error) error {
	return fmt.Errorf("sim: applying plan: %w", err) // want `does not reference the fault seed`
}

// Simulate is the healthy path: wraps without a seed are fine here.
func Simulate(err error) error {
	return fmt.Errorf("sim: transfer: %w", err) // allowed: not a fault path
}

// Package parallel mirrors the production pool's blocking surface for
// the locksafe fixture: names and shapes match crophe/internal/parallel,
// which is all the analyzer's package-name matching needs.
package parallel

import "context"

// Queue is the bounded admission semaphore stand-in.
type Queue struct{ ch chan struct{} }

// Acquire blocks for a token and returns its release closure.
func (q *Queue) Acquire(ctx context.Context) (func(), error) { return func() {}, nil }

// TryAcquire takes a token only if one is free.
func (q *Queue) TryAcquire() (func(), bool) { return func() {}, true }

// For submits n iterations to the pool and waits for them.
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ForChunk submits contiguous chunks to the pool and waits for them.
func ForChunk(n int, fn func(int, int)) { fn(0, n) }

// Package a is the locksafe fixture: blocking operations (channel ops,
// WaitGroup.Wait, pool token acquisition, pool submission, defaultless
// select) executed while a sync mutex is held must be flagged; blocking
// after release, in goroutines, or with no lock held must not. Taking a
// second mutex is deliberately not a finding.
package a

import (
	"context"
	"sync"

	"crophe/internal/analysis/testdata/src/locksafe/parallel"
)

type cache struct {
	mu    sync.Mutex
	ready chan struct{}
	items map[string]int
}

// waitHeld is the single-flight deadlock shape: the receive blocks while
// the lock the filler needs is still held.
func (c *cache) waitHeld() {
	c.mu.Lock()
	<-c.ready // want `blocking operation \(channel receive\) while c.mu is locked`
	c.mu.Unlock()
}

// waitReleased is the fixed single-flight shape: unlock before waiting.
func (c *cache) waitReleased() {
	c.mu.Lock()
	c.mu.Unlock()
	<-c.ready
}

// acquireUnderLock takes a pool token while holding bookkeeping state.
func (c *cache) acquireUnderLock(ctx context.Context, q *parallel.Queue) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	release, err := q.Acquire(ctx) // want `blocking operation \(parallel.Queue.Acquire\) while c.mu is locked`
	if err != nil {
		return err
	}
	defer release()
	return nil
}

func (c *cache) waitGroupHeld(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `blocking operation \(sync.WaitGroup.Wait\) while c.mu is locked`
	c.mu.Unlock()
}

// fill blocks; helperHeld must see that through the call.
func fill(ch chan int) { ch <- 1 }

func (c *cache) helperHeld(ch chan int) {
	c.mu.Lock()
	fill(ch) // want `blocking operation \(channel send via fill\) while c.mu is locked`
	c.mu.Unlock()
}

func (c *cache) selectHeld(a, b chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `blocking operation \(select with no default case\) while c.mu is locked`
	case <-a:
	case <-b:
	}
}

// selectDefault cannot block: no finding.
func (c *cache) selectDefault(a chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-a:
	default:
	}
}

func (c *cache) submitHeld(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	parallel.For(n, func(i int) {}) // want `worker-pool submission \(parallel.For\)\) while c.mu is locked`
}

// goroutineSend: the goroutine does not hold our lock — no finding.
func (c *cache) goroutineSend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { ch <- 1 }()
	c.items["x"] = 1
}

// nested lock acquisition is not a blocking op for this analyzer.
type pair struct{ a, b sync.Mutex }

func (p *pair) nested() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// branchLocked: the lock is not definitely held at the receive — the
// conservative branch merge must stay silent.
func (c *cache) branchLocked(cond bool, ch chan int) {
	if cond {
		c.mu.Lock()
		c.items["x"] = 1
		c.mu.Unlock()
	}
	<-ch
}

// noLock blocks freely.
func noLock(ch chan int) {
	<-ch
	ch <- 2
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafe flags blocking operations executed while a sync.Mutex or
// RWMutex is held: channel sends/receives, selects with no default,
// sync.WaitGroup.Wait, parallel.Queue.Acquire, worker-pool submission
// (parallel.For/ForChunk) and time.Sleep. Blocking under a lock couples
// the lock's critical section to progress elsewhere — the exact deadlock
// shape of a single-flight cache waiting on its ready channel while still
// holding the cache mutex, or an admission handler acquiring a pool token
// under its bookkeeping lock. The interprocedural facts layer lets the
// check see blocking buried one or more package-local helper calls deep.
// Taking another mutex while holding one is deliberately NOT flagged:
// ordered nested locking is a legitimate pattern the analyzer cannot
// distinguish cheaply.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "flags blocking operations (channel ops, WaitGroup.Wait, pool " +
		"token acquisition, pool submission) executed while a sync.Mutex/" +
		"RWMutex is held",
	Run: runLockSafe,
}

func runLockSafe(pass *Pass) error {
	w := &lockWalker{pass: pass, facts: pass.Facts(), reported: map[token.Pos]bool{}}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walkStmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				// A closure is its own frame: whether a lock is held when it
				// runs is not lexically knowable, so it starts lock-free.
				w.walkStmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	return nil
}

// lockWalker tracks the set of held mutexes (keyed by the rendered
// receiver expression) through a lexical walk. Branch bodies are walked
// with copies of the entry state and the post-branch state conservatively
// reverts to the entry state, so only definitely-held locks ever flag.
type lockWalker struct {
	pass     *Pass
	facts    *Facts
	reported map[token.Pos]bool
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		w.walkStmt(st, held)
	}
}

func (w *lockWalker) walkStmt(st ast.Stmt, held map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, op, ok := w.lockOp(call); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
		}
		w.checkOps(s, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the body —
		// that is the point: blocking below it is still blocking under the
		// lock. Other deferred work runs at frame exit; skip it.
	case *ast.GoStmt:
		// Runs on another goroutine that does not hold our locks.
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkOps(s.Cond, held)
		w.walkStmt(s.Body, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkOps(s.Cond, held)
		inner := copyHeld(held)
		w.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.checkOps(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkOps(s.Tag, held)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.report(s.Pos(), "select with no default case", nil, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	default:
		// AssignStmt, SendStmt, ReturnStmt, IncDecStmt, ...: scan for
		// blocking operations in the contained expressions.
		w.checkOps(st, held)
	}
}

// checkOps scans one statement or expression (no nested blocks) for
// blocking operations and reports each while any lock is held.
func (w *lockWalker) checkOps(n ast.Node, held map[string]token.Pos) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			w.report(s.Pos(), "channel send", nil, held)
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				w.report(s.Pos(), "channel receive", nil, held)
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(w.pass.Info, s); ok {
				w.report(s.Pos(), desc, nil, held)
				return true
			}
			if fn := calleeFunc(w.pass.Info, s); fn != nil {
				if _, desc, chain, ok := w.facts.Blocks(fn); ok {
					w.report(s.Pos(), desc, chain, held)
				}
			}
		}
		return true
	})
}

// report emits one diagnostic per operation position, naming a held lock
// and where it was taken.
func (w *lockWalker) report(pos token.Pos, desc string, chain []string, held map[string]token.Pos) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	recv, lockPos := oneHeld(held)
	via := ""
	if len(chain) > 0 {
		via = " via " + strings.Join(chain, " → ")
	}
	w.pass.Reportf(pos,
		"blocking operation (%s%s) while %s is locked (Lock at line %d): "+
			"release the mutex before blocking, or the critical section "+
			"couples lock holders to external progress",
		desc, via, recv, w.pass.Fset.Position(lockPos).Line)
}

// oneHeld picks the deterministically-first held lock for the message.
func oneHeld(held map[string]token.Pos) (string, token.Pos) {
	best := ""
	var bestPos token.Pos
	for recv, pos := range held {
		if best == "" || pos < bestPos {
			best, bestPos = recv, pos
		}
	}
	return best, bestPos
}

// lockOp classifies mu.Lock/RLock/Unlock/RUnlock calls on sync mutexes
// and returns the rendered receiver expression.
func (w *lockWalker) lockOp(call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sync" {
		return "", "", false
	}
	switch recvNamedType(fn) {
	case "Mutex", "RWMutex":
		return exprKey(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// exprKey renders a receiver expression for use as a held-lock key; two
// syntactically identical expressions denote the same mutex within one
// function body.
func exprKey(e ast.Expr) string { return types.ExprString(e) }

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

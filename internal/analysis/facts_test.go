package analysis_test

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"crophe/internal/analysis"
)

// loadFactsFixture computes the fact set for testdata/src/facts/a.
func loadFactsFixture(t *testing.T) *analysis.Facts {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "testdata", "src", "facts", "a")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	importPath, err := loader.ImportPathFor(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.ComputeFacts(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
}

// factByName finds a summarised function by name.
func factByName(t *testing.T, facts *analysis.Facts, name string) *analysis.FuncFact {
	t.Helper()
	for _, ff := range facts.Funcs() {
		if ff.Fn.Name() == name {
			return ff
		}
	}
	t.Fatalf("no fact for function %q", name)
	return nil
}

func TestFactsBlockingChain(t *testing.T) {
	facts := loadFactsFixture(t)

	// Direct fact on the leaf.
	leaf := factByName(t, facts, "blockDirect")
	if !leaf.BlockPos.IsValid() || leaf.BlockDesc != "channel receive" {
		t.Errorf("blockDirect: got direct block %q (valid=%v), want channel receive",
			leaf.BlockDesc, leaf.BlockPos.IsValid())
	}

	// Transitive: two helpers deep, with the full call path reported.
	top := factByName(t, facts, "blockTop")
	_, desc, chain, ok := facts.Blocks(top.Fn)
	if !ok || desc != "channel receive" {
		t.Fatalf("Blocks(blockTop) = %q, %v; want channel receive, true", desc, ok)
	}
	if got := strings.Join(chain, "→"); got != "blockTop→blockMiddle→blockDirect" {
		t.Errorf("Blocks(blockTop) chain = %s", got)
	}
}

func TestFactsMutualRecursion(t *testing.T) {
	facts := loadFactsFixture(t)

	// A cycle containing a send: both members block, and the query
	// terminates.
	for _, name := range []string{"pingPongA", "pingPongB"} {
		ff := factByName(t, facts, name)
		if _, desc, _, ok := facts.Blocks(ff.Fn); !ok || desc != "channel send" {
			t.Errorf("Blocks(%s) = %q, %v; want channel send, true", name, desc, ok)
		}
	}

	// A fact-free cycle and direct self-recursion: no block, no hang.
	for _, name := range []string{"cycleA", "cycleB", "selfLoop", "quiet"} {
		ff := factByName(t, facts, name)
		if _, _, _, ok := facts.Blocks(ff.Fn); ok {
			t.Errorf("Blocks(%s) reported a block in a fact-free cycle", name)
		}
	}
}

func TestFactsMethodValue(t *testing.T) {
	facts := loadFactsFixture(t)
	mv := factByName(t, facts, "methodValue")
	_, desc, chain, ok := facts.EmitsOrdered(mv.Fn)
	if !ok || !strings.HasPrefix(desc, "fmt.Print") {
		t.Fatalf("EmitsOrdered(methodValue) = %q, %v; want fmt.Println via method value", desc, ok)
	}
	if got := strings.Join(chain, "→"); got != "methodValue→emit" {
		t.Errorf("EmitsOrdered(methodValue) chain = %s", got)
	}
}

func TestFactsOrderedSinkChain(t *testing.T) {
	facts := loadFactsFixture(t)
	top := factByName(t, facts, "sinkTop")
	_, desc, chain, ok := facts.EmitsOrdered(top.Fn)
	if !ok || desc != "fmt.Print" {
		t.Fatalf("EmitsOrdered(sinkTop) = %q, %v; want fmt.Print, true", desc, ok)
	}
	if got := strings.Join(chain, "→"); got != "sinkTop→sinkHelper" {
		t.Errorf("EmitsOrdered(sinkTop) chain = %s", got)
	}
}

func TestFactsReturnsLease(t *testing.T) {
	facts := loadFactsFixture(t)
	for name, want := range map[string]bool{
		"forward":      true,
		"forwardTwice": true,
		"consume":      false,
		"quiet":        false,
	} {
		ff := factByName(t, facts, name)
		if got := facts.ReturnsLease(ff.Fn); got != want {
			t.Errorf("ReturnsLease(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestFactsGoDeferExcluded(t *testing.T) {
	facts := loadFactsFixture(t)
	ff := factByName(t, facts, "deferredOps")
	if ff.BlockPos.IsValid() {
		t.Errorf("deferredOps: direct block %q inside go/defer should be excluded", ff.BlockDesc)
	}
	if _, desc, _, ok := facts.Blocks(ff.Fn); ok {
		t.Errorf("Blocks(deferredOps) = %q via a go-statement edge; goroutine work must not charge the caller", desc)
	}
}

func TestFactsFuncsDeterministic(t *testing.T) {
	facts := loadFactsFixture(t)
	funcs := facts.Funcs()
	if len(funcs) == 0 {
		t.Fatal("no functions summarised")
	}
	for i := 1; i < len(funcs); i++ {
		if funcs[i-1].Decl.Pos() >= funcs[i].Decl.Pos() {
			t.Fatalf("Funcs() not in position order at index %d", i)
		}
	}
}

// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its diagnostics against expectations embedded in
// the fixture source as comments of the form
//
//	x := a + b // want "raw \\+ on a modmath residue"
//
// Each quoted string after `want` is a regular expression that must match
// the message of a diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic, both
// fail the test. The layout and comment syntax mirror
// golang.org/x/tools/go/analysis/analysistest so the corpora can migrate
// unchanged if the repo ever vendors the real framework.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"crophe/internal/analysis"
)

// wantRE extracts the quoted expectation strings from a `// want` comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<pkgRel> (relative to the caller's package
// directory), applies the analyzer, and reports mismatches through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgRel string) {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller to resolve testdata path")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "testdata", "src", filepath.FromSlash(pkgRel))
	RunDir(t, a, dir)
}

// RunDir is Run with an explicit fixture directory.
func RunDir(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	importPath, err := loader.ImportPathFor(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", dir, err)
	}

	expects, err := collectExpectations(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != filepath.Base(d.Pos.Filename) || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// collectExpectations parses `// want "..."` comments out of the fixture
// files.
func collectExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, file := range pkg.Files {
		filename := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
		for _, cg := range allComments(file) {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				rest := strings.TrimSpace(m[1])
				for len(rest) > 0 {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want expectation %q", filename, line, rest)
					}
					lit, remainder, err := cutQuoted(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", filename, line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", filename, line, lit, err)
					}
					out = append(out, &expectation{file: filename, line: line, re: re, raw: lit})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return out, nil
}

// cutQuoted splits one leading Go string literal off s.
func cutQuoted(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad string literal %q: %v", s[:i+1], err)
			}
			return lit, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want literal %q", s)
}

func allComments(f *ast.File) []*ast.CommentGroup { return f.Comments }

// Package analysis is a self-contained static-analysis framework for the
// CROPHE repository, modelled on golang.org/x/tools/go/analysis but built
// entirely on the standard library (go/ast, go/parser, go/types) so the
// module stays dependency-free. It powers cmd/crophe-lint.
//
// The framework enforces domain invariants the Go compiler cannot see:
// residues must stay reduced modulo q, CKKS operand levels/scales must be
// checked before ciphertexts combine, library panics must carry context,
// and shared parameter structs must not be mutated in ways that silently
// lose writes or race across goroutines. CiFlow and Taiyi both observe
// that dataflow-optimisation bugs in FHE stacks manifest as silently
// wrong ciphertexts rather than crashes; these analyzers are the early
// tripwires for that failure class.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors the x/tools Analyzer
// surface closely enough that migrating to the real framework later is a
// mechanical change.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check against one loaded package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// facts is the shared per-package fact set (call graph + function
	// summaries); Run computes it once and hands the same instance to
	// every analyzer of the package. Access through Facts().
	facts *Facts

	diags []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over a loaded package and returns the
// findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	// One fact set per package, shared by every analyzer: the call graph
	// and function summaries are analyzer-independent, so computing them
	// once amortises the walk across the suite.
	var shared *Facts
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    shared,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		shared = pass.facts // keep a lazily-computed fact set for the next analyzer
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// All returns the full CROPHE analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ModArith, LevelCheck, PanicPolicy, ParamCopy, TelemetryGuard,
		FaultSeed, CtxBudget, MapOrder, LockSafe, ReleaseCheck,
	}
}

// namedType unwraps pointers and returns the named type of an expression's
// type, or nil when it is not (a pointer to) a named type.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t is (a pointer to) a named type with the given
// type name, optionally restricted to a defining package name. Matching by
// package *name* rather than full path keeps analyzers testable against
// fixture packages under testdata/.
func isNamed(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Name() != typeName {
		return false
	}
	if pkgName == "" {
		return true
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == pkgName
}

package analysis

import (
	"go/ast"
	"go/types"
)

// TelemetryGuard enforces the observability layer's zero-cost contract:
// every telemetry.Collector.EmitSpan/EmitCounter call site must be
// statically guarded by an Enabled() check on the same receiver — either
// an enclosing `if c.Enabled() { ... }` or a preceding early return
// `if !c.Enabled() { return }` in the same function. Emit methods are
// nil-safe, so unguarded calls are *correct* — but they still pay
// argument construction (fmt.Sprintf keys, span labels, Arg slices) on
// the simulator's hot path when telemetry is off, which is exactly the
// overhead the disabled path promises not to have.
var TelemetryGuard = &Analyzer{
	Name: "telemetryguard",
	Doc: "requires telemetry.Collector Emit* calls to sit behind an " +
		"Enabled() guard on the same receiver, so argument construction " +
		"is never paid when telemetry is disabled",
	Run: runTelemetryGuard,
}

func runTelemetryGuard(pass *Pass) error {
	// The telemetry package itself (tests, the exporter) emits freely.
	if pass.Pkg.Name() == "telemetry" {
		return nil
	}
	g := &guardWalker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.walkBlock(fd.Body, map[string]bool{})
		}
	}
	return nil
}

// guardWalker tracks, per lexical position, the set of receiver
// expressions (rendered with types.ExprString) whose Enabled() check
// dominates that position. Collector enablement is immutable (nil or
// not), so a lexical guard is sound even across closures.
type guardWalker struct {
	pass *Pass
}

// walkBlock walks statements in order, accumulating early-return guards:
// after `if !c.Enabled() { return }`, the rest of the block is guarded
// for c.
func (g *guardWalker) walkBlock(b *ast.BlockStmt, guarded map[string]bool) {
	cur := copySet(guarded)
	for _, st := range b.List {
		if ifs, ok := st.(*ast.IfStmt); ok {
			if recv, ok := g.negatedGuard(ifs); ok && ifs.Else == nil && terminates(ifs.Body) {
				g.walkBlock(ifs.Body, cur)
				cur[recv] = true
				continue
			}
		}
		g.walkNode(st, cur)
	}
}

// walkIf handles the positive form: the body of `if c.Enabled() { ... }`
// (including `&&` conjunctions) is guarded for c; the else branch is not.
func (g *guardWalker) walkIf(ifs *ast.IfStmt, guarded map[string]bool) {
	if ifs.Init != nil {
		g.walkNode(ifs.Init, guarded)
	}
	g.walkNode(ifs.Cond, guarded)
	inner := guarded
	if pos := g.positiveGuards(ifs.Cond); len(pos) > 0 {
		inner = copySet(guarded)
		for _, r := range pos {
			inner[r] = true
		}
	}
	g.walkBlock(ifs.Body, inner)
	switch e := ifs.Else.(type) {
	case *ast.IfStmt:
		g.walkIf(e, guarded)
	case *ast.BlockStmt:
		g.walkBlock(e, guarded)
	}
}

// walkNode descends generically, intercepting the constructs that change
// guard state and the Emit calls under scrutiny.
func (g *guardWalker) walkNode(n ast.Node, guarded map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.BlockStmt:
			g.walkBlock(s, guarded)
			return false
		case *ast.IfStmt:
			g.walkIf(s, guarded)
			return false
		case *ast.CallExpr:
			g.checkCall(s, guarded)
			return true
		}
		return true
	})
}

// checkCall reports EmitSpan/EmitCounter calls on a telemetry.Collector
// receiver that no dominating Enabled() guard covers.
func (g *guardWalker) checkCall(call *ast.CallExpr, guarded map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "EmitSpan" && name != "EmitCounter" {
		return
	}
	if !g.isCollector(sel.X) {
		return
	}
	recv := types.ExprString(sel.X)
	if guarded[recv] {
		return
	}
	g.pass.Reportf(call.Pos(),
		"unguarded telemetry emission: wrap %s.%s in `if %s.Enabled() { ... }` "+
			"(or return early on `!%s.Enabled()`) so argument construction is "+
			"free when telemetry is off", recv, name, recv, recv)
}

// positiveGuards collects receivers proven enabled when cond is true:
// `c.Enabled()` terms of the top-level `&&` conjunction.
func (g *guardWalker) positiveGuards(cond ast.Expr) []string {
	switch e := stripParens(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return append(g.positiveGuards(e.X), g.positiveGuards(e.Y)...)
		}
	case *ast.CallExpr:
		if recv, ok := g.enabledReceiver(e); ok {
			return []string{recv}
		}
	}
	return nil
}

// negatedGuard matches `if !c.Enabled() { ... }` and returns c.
func (g *guardWalker) negatedGuard(ifs *ast.IfStmt) (string, bool) {
	un, ok := stripParens(ifs.Cond).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "!" {
		return "", false
	}
	call, ok := stripParens(un.X).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return g.enabledReceiver(call)
}

// enabledReceiver returns the receiver expression of a
// telemetry.Collector.Enabled() call.
func (g *guardWalker) enabledReceiver(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Enabled" || len(call.Args) != 0 {
		return "", false
	}
	if !g.isCollector(sel.X) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func (g *guardWalker) isCollector(x ast.Expr) bool {
	tv, ok := g.pass.Info.Types[x]
	return ok && isNamed(tv.Type, "telemetry", "Collector")
}

// terminates reports whether a block always leaves the enclosing scope
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("crophe/internal/poly") or a pseudo-path for fixtures
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages of a single module using only the standard
// library: imports inside the module resolve to their source directories,
// everything else (the standard library) goes through the compiler's
// source importer. The loader memoises packages so a whole-repo lint
// type-checks each package once.
type Loader struct {
	ModPath string // module path from go.mod, e.g. "crophe"
	ModDir  string // absolute directory containing go.mod
	Fset    *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles during recursive resolution.
	loading map[string]bool
	// IncludeTests controls whether *_test.go files in the package's own
	// package (not external _test packages) are parsed. Lint runs leave
	// this false; fixture loading may enable it.
	IncludeTests bool
}

// NewLoader locates the enclosing module of dir and returns a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local paths load from source,
// anything else is delegated to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.LoadImportPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadImportPath loads a module-local package by import path.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModDir, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir, registering it under
// importPath. Results are memoised by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// An in-package test file keeps the package name; external test
		// packages (name_test) are out of scope for the lint suite.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// ExpandPatterns resolves command-line package patterns relative to the
// module root into package directories. Supported forms: "./..." (whole
// module), "dir/..." (subtree), plain relative directories, and
// module-qualified import paths. Directories named testdata, vendor, or
// starting with "." or "_" are skipped during tree walks.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkTree(l.ModDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walkTree(root, add); err != nil {
				return nil, err
			}
		default:
			p := pat
			if strings.HasPrefix(p, l.ModPath) {
				p = "./" + strings.TrimPrefix(strings.TrimPrefix(p, l.ModPath), "/")
			}
			add(filepath.Join(l.ModDir, filepath.FromSlash(p)))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) walkTree(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

// ImportPathFor maps a directory inside the module to its import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

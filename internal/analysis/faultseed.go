package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// FaultSeed enforces replayability on fault paths: an error wrapped with
// fmt.Errorf("...: %w", ...) inside the fault package, or inside any
// function handling degraded machines, must reference the fault seed —
// either interpolated into the message (the "(seed %d)" convention) or
// passed as an argument. The seed is the one number that replays a
// degraded failure deterministically; a wrap that drops it produces a
// bug report nobody can reproduce. Command packages are exempt: their
// recover boundary already stamps the seed.
var FaultSeed = &Analyzer{
	Name: "faultseed",
	Doc: "requires fmt.Errorf %w wraps on fault paths (package fault, " +
		"*Degraded*/*Fault* functions) to reference the fault seed so " +
		"degraded failures stay deterministically replayable",
	Run: runFaultSeed,
}

// faultSeedPackages lists package names where every error wrap is a fault
// path. Matching by package name keeps the analyzer testable against
// fixture packages.
var faultSeedPackages = map[string]bool{"fault": true}

func runFaultSeed(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	wholePkg := faultSeedPackages[pass.Pkg.Name()]
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !wholePkg && !strings.Contains(name, "Degraded") && !strings.Contains(name, "Fault") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 || !isFmtErrorf(call) {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.Contains(format, "%w") {
					return true
				}
				if strings.Contains(strings.ToLower(format), "seed") || mentionsSeed(call.Args[1:]) {
					return true
				}
				pass.Reportf(call.Pos(),
					"fault-path error wrap does not reference the fault seed; "+
						`interpolate it (the "(seed %%d)" convention) so the failure can be replayed`)
				return true
			})
		}
	}
	return nil
}

// isFmtErrorf reports whether the call is fmt.Errorf.
func isFmtErrorf(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "fmt"
}

// mentionsSeed reports whether any argument expression names the seed —
// a plain `seed` identifier or a `.Seed` field selection.
func mentionsSeed(args []ast.Expr) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if strings.EqualFold(x.Name, "seed") {
					found = true
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "Seed" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParamCopy flags two classes of parameter-struct misuse:
//
//  1. Mutating a field of a configuration struct (ckks.Parameters,
//     arch.HWConfig, arch.ParamSet, sched.Options) received *by value*
//     with no later read of the parameter — the write vanishes at the
//     caller, a classic silent-lost-update. The Go defaulting idiom
//     (normalise the value param, then use it) reads the parameter after
//     the write and is therefore allowed.
//  2. Mutating such a struct *through a shared pointer from inside a
//     goroutine* launched with `go func(){...}()` — concurrent schedule
//     sweeps share one config object, so in-place tweaks race.
//
// The correct patterns are: take a pointer when mutation is intended, or
// clone (HWConfig.Clone / WithSRAM) and mutate the copy.
var ParamCopy = &Analyzer{
	Name: "paramcopy",
	Doc: "flags mutation of ckks.Parameters/arch.HWConfig/arch.ParamSet/" +
		"sched.Options received by value (write is lost) or through a " +
		"pointer shared with a goroutine (races)",
	Run: runParamCopy,
}

// configTypeNames are the named struct types the analyzer protects,
// matched by type name so fixture packages can declare look-alikes.
var configTypeNames = map[string]bool{
	"Parameters": true, "HWConfig": true, "ParamSet": true, "Options": true,
}

func isConfigType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if !configTypeNames[n.Obj().Name()] {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}

func runParamCopy(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkByValueMutation(pass, fn)
			checkGoroutineMutation(pass, fn)
			return true
		})
	}
	return nil
}

// checkByValueMutation reports field assignments to config-typed
// parameters or receivers passed by value.
func checkByValueMutation(pass *Pass, fn *ast.FuncDecl) {
	byValue := make(map[types.Object]bool)
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue // mutation through a pointer is intentional
			}
			if !isConfigType(t) {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					byValue[obj] = true
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	if len(byValue) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range st.Lhs {
			obj, field, ok := fieldWriteBase(pass, lhs)
			if !ok || !byValue[obj] {
				continue
			}
			if readAfter(pass, fn.Body, obj, st.End()) {
				continue // defaulting idiom: the normalised value is used
			}
			pass.Reportf(st.Pos(),
				"assignment to %s.%s mutates a %s received by value and is never read again — "+
					"the write is lost at the caller; take a pointer or mutate a clone",
				obj.Name(), field, typeName(obj.Type()))
		}
		return true
	})
}

// readAfter reports whether obj is used after pos anywhere in body, other
// than as the base of another field write. Any such use means the mutated
// value is consumed locally, so the write is not lost.
func readAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if st, ok := n.(*ast.AssignStmt); ok {
			// Field writes to obj are not reads; descend into the RHS only.
			writeBases := make(map[ast.Expr]bool)
			for _, lhs := range st.Lhs {
				if o, _, ok := fieldWriteBase(pass, lhs); ok && o == obj {
					writeBases[lhs] = true
				}
			}
			if len(writeBases) > 0 {
				for _, rhs := range st.Rhs {
					if usesObjAfter(pass, rhs, obj, pos) {
						found = true
					}
				}
				return false
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && id.End() > pos && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// usesObjAfter reports whether e mentions obj at a position after pos.
func usesObjAfter(pass *Pass, e ast.Expr, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.End() > pos && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkGoroutineMutation reports field writes through config pointers
// captured from the enclosing scope inside go-launched function literals.
func checkGoroutineMutation(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := goStmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			st, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range st.Lhs {
				obj, field, ok := fieldWriteBase(pass, lhs)
				if !ok || !isConfigType(obj.Type()) {
					continue
				}
				if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
					continue // value copies inside the goroutine are private
				}
				// Captured from outside the literal ⇒ shared with other
				// goroutines (including the spawner).
				if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
					pass.Reportf(st.Pos(),
						"goroutine mutates %s.%s through a shared *%s — races with other users of the "+
							"config; clone it (e.g. Clone/WithSRAM) before the goroutine", obj.Name(), field,
						typeName(obj.Type()))
				}
			}
			return true
		})
		return true
	})
}

// fieldWriteBase matches an assignment target of the form ident.Field and
// returns the identifier's object and the field name.
func fieldWriteBase(pass *Pass, lhs ast.Expr) (types.Object, string, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, "", false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, "", false
	}
	return obj, sel.Sel.Name, true
}

// typeName renders the named type of t (unwrapping a pointer) for
// diagnostics.
func typeName(t types.Type) string {
	if n := namedType(t); n != nil {
		return n.Obj().Name()
	}
	return t.String()
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder protects the repository's byte-identical-output guarantees
// (Chrome traces, JSONL sweep journals, bench reports, and the future
// sharded-sweep merge) from Go's randomised map iteration order. A
// `range` over a map whose body feeds an order-sensitive sink —
// appending to a slice that is never subsequently sorted, writing
// directly to a stream (fmt.Fprint*/Write*), emitting trace spans, or
// accumulating floating-point/complex values (whose rounding is
// non-associative) — produces output that differs run to run. Counter
// accumulation and integer arithmetic are exempt: they are exact and
// commutative, and counters export name-sorted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map bodies that feed order-sensitive sinks " +
		"(unsorted appends, stream writes, span emission, float " +
		"accumulation) and so break byte-identical output guarantees",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	facts := pass.Facts()
	for _, file := range pass.Files {
		// Map ranges are located through their enclosing statement lists so
		// the check can see the post-loop statements: a sort on the
		// collected slice right after the loop launders the order.
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkMapRange(pass, facts, rs, list[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
// suffix is the statement list following the loop in its enclosing block,
// used to recognise the collect-then-sort idiom.
func checkMapRange(pass *Pass, facts *Facts, rs *ast.RangeStmt, suffix []ast.Stmt) {
	sortedAfter := sortedVars(pass, suffix)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is audited by its own enclosing-list visit;
			// descending here would double-report its body.
			if isMapRange(pass, s) {
				return false
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, s, sortedAfter)
		case *ast.CallExpr:
			if desc, ok := orderedSinkCall(pass.Info, s); ok {
				pass.Reportf(s.Pos(),
					"map iteration feeds %s: emission order follows map order "+
						"and differs run to run; iterate sorted keys instead", desc)
				return true
			}
			if fn := calleeFunc(pass.Info, s); fn != nil {
				if _, desc, chain, ok := facts.EmitsOrdered(fn); ok {
					pass.Reportf(s.Pos(),
						"map iteration feeds %s via %s: emission order follows "+
							"map order and differs run to run; iterate sorted keys instead",
						desc, strings.Join(chain, " → "))
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign flags unsorted appends and order-dependent
// accumulation targeting variables declared outside the loop.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sortedAfter map[types.Object]bool) {
	// out = append(out, ...) collecting into an outer slice.
	if (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := stripParens(as.Rhs[0]).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			id, ok := stripParens(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return
			}
			obj := lhsObject(pass, id)
			if obj == nil || declaredWithin(obj, rs) || sortedAfter[obj] {
				return
			}
			pass.Reportf(as.Pos(),
				"append to %s inside map iteration without a deterministic "+
					"sort afterwards: element order follows map order; sort the "+
					"slice (or iterate sorted keys)", id.Name)
			return
		}
	}

	// Compound accumulation: order-dependent for floats/complex (rounding
	// is non-associative) and strings (concatenation order is the value).
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	lhs := as.Lhs[0]
	tv, ok := pass.Info.Types[lhs]
	if !ok {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	var kind string
	switch {
	case basic.Info()&types.IsFloat != 0:
		kind = "floating-point"
	case basic.Info()&types.IsComplex != 0:
		kind = "complex"
	case basic.Info()&types.IsString != 0:
		kind = "string"
	default:
		return // integer accumulation is exact and commutative
	}
	obj := accumTarget(pass, lhs)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	pass.Reportf(as.Pos(),
		"%s accumulation into %s inside map iteration is order-dependent: "+
			"map order varies run to run; iterate sorted keys or keep a running "+
			"total at the update sites", kind, obj.Name())
}

// sortedVars collects variables that a statement suffix passes to a
// sort.*/slices.* call — the collect-then-sort idiom that restores
// determinism after a map-order append.
func sortedVars(pass *Pass, suffix []ast.Stmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, st := range suffix {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if name := fn.Pkg().Name(); name != "sort" && name != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							out[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

// isBuiltinAppend matches calls to the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := stripParens(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// lhsObject resolves the object an assignment left-hand identifier
// denotes (Defs for :=, Uses for =).
func lhsObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// accumTarget resolves the storage an accumulation writes through: the
// root identifier of an index/selector chain. A selector target (a
// struct field) always outlives the loop.
func accumTarget(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := stripParens(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok {
				return sel.Obj()
			}
			return pass.Info.Uses[x.Sel]
		case *ast.Ident:
			return lhsObject(pass, x)
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj is declared inside the range
// statement (its key/value vars or body locals) — accumulating into those
// resets each iteration and is order-safe.
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos().IsValid() && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"crophe/internal/analysis"
)

// FuzzAnalyzersNoPanic feeds synthesized Go source through the full
// ten-analyzer suite (which also forces the facts layer to compute). The
// invariant under test is narrow: malformed, partial, or adversarial
// source may fail to load or produce diagnostics, but must never panic
// the framework. The seed corpus covers each analyzer's trigger syntax
// plus parse- and type-error shapes.
func FuzzAnalyzersNoPanic(f *testing.F) {
	seeds := []string{
		// Empty-ish and malformed inputs.
		"package a\n",
		"package a\nfunc (",
		"package a\nfunc f() { undeclared() }\n",
		// maporder shapes: unsorted append, stream write, accumulation.
		`package a
import ("fmt";"os";"sort")
func f(m map[string]int) []string {
	var out []string
	for k := range m { out = append(out, k); fmt.Fprintln(os.Stdout, k) }
	sort.Strings(out)
	return out
}
func g(m map[string]float64) (t float64) { for _, v := range m { t += v }; return }
`,
		// locksafe shapes: mutex held across channel ops and select.
		`package a
import "sync"
type s struct{ mu sync.Mutex; ch chan int }
func (x *s) f() { x.mu.Lock(); <-x.ch; x.mu.Unlock() }
func (x *s) g() { x.mu.Lock(); defer x.mu.Unlock(); select { case <-x.ch: default: } }
func (x *s) h(wg *sync.WaitGroup) { x.mu.Lock(); wg.Wait(); x.mu.Unlock() }
`,
		// releasecheck shapes: lease types, defer, early return.
		`package a
type arena struct{}
func (a *arena) release() {}
func get() *arena { return &arena{} }
func f(bad bool) {
	a := get()
	defer a.release()
	b := get()
	if bad { return }
	b.release()
}
`,
		// Recursion, method values, closures, go/defer.
		`package a
import "fmt"
func a1(n int) { if n > 0 { a2(n-1) } }
func a2(n int) { a1(n) }
type e struct{}
func (e) emit() { fmt.Print("x") }
func f(x e, ch chan int) {
	g := x.emit
	defer g()
	go func() { ch <- 1 }()
}
`,
		// Generics and odd-but-legal syntax.
		`package a
func Map[K comparable, V any](m map[K]V) []V {
	var out []V
	for _, v := range m { out = append(out, v) }
	return out
}
`,
		// Shadowing and blank identifiers.
		`package a
func f(m map[int]int) {
	append := func(a []int, b ...int) []int { return a }
	var out []int
	for k := range m { out = append(out, k) }
	_ = out
}
`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fuzzpkg\n\ngo 1.21\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		loader, err := analysis.NewLoader(dir)
		if err != nil {
			return
		}
		pkg, err := loader.LoadDir(dir, "fuzzpkg")
		if err != nil {
			return // parse/type errors are expected for mutated inputs
		}
		// Any panic here fails the fuzz target; diagnostics and analyzer
		// errors are acceptable outcomes.
		if _, err := analysis.Run(pkg, analysis.All()); err != nil {
			t.Logf("analyzer error (acceptable): %v", err)
		}
	})
}

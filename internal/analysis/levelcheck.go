package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LevelCheck flags Evaluator methods that combine two ciphertext operands
// without a level/scale compatibility guard in the method body. The
// paper's cross-operator pipelining makes it easy to hand an evaluator two
// ciphertexts at different levels or drifted scales; combining them
// without aligning first produces a structurally valid ciphertext that
// decrypts to garbage. Every method with two or more *Ciphertext
// parameters must either call a recognised guard (alignLevels,
// checkScales, checkLevels, ...) or explicitly compare the operands'
// .Level fields before use.
var LevelCheck = &Analyzer{
	Name: "levelcheck",
	Doc: "flags Evaluator methods combining two *Ciphertext operands " +
		"without a level/scale compatibility guard (alignLevels/checkScales " +
		"or an explicit .Level comparison)",
	Run: runLevelCheck,
}

// guardNames recognises compatibility-guard callees by lower-cased
// substring, so alignLevels, AlignLevels, checkScales, CheckLevelScale,
// sameLevel, and ensureCompatible all count.
var guardNames = []string{"alignlevel", "checkscale", "checklevel", "samelevel", "compat"}

func runLevelCheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recv := pass.Info.TypeOf(fn.Recv.List[0].Type)
			if recv == nil || !isNamed(recv, "", "Evaluator") {
				continue
			}
			ctParams := ciphertextParams(pass, fn)
			if len(ctParams) < 2 {
				continue
			}
			if hasLevelGuard(pass, fn.Body, ctParams) {
				continue
			}
			pass.Reportf(fn.Pos(),
				"Evaluator method %s combines two *Ciphertext operands without a level/scale guard "+
					"(call alignLevels/checkScales or compare .Level explicitly)", fn.Name.Name)
		}
	}
	return nil
}

// ciphertextParams returns the objects of the method's *Ciphertext
// parameters.
func ciphertextParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fn.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isNamed(t, "", "Ciphertext") {
			continue
		}
		if _, isPtr := t.(*types.Pointer); !isPtr {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// hasLevelGuard reports whether the body calls a recognised guard or
// compares .Level selectors of two distinct ciphertext parameters.
func hasLevelGuard(pass *Pass, body *ast.BlockStmt, ctParams map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			name := calleeName(x)
			lower := strings.ToLower(name)
			for _, g := range guardNames {
				if strings.Contains(lower, g) {
					found = true
					return false
				}
			}
		case *ast.BinaryExpr:
			// ct0.Level <op> ct1.Level on two distinct parameters.
			a, aok := levelSelectorBase(pass, x.X)
			b, bok := levelSelectorBase(pass, x.Y)
			if aok && bok && a != b && ctParams[a] && ctParams[b] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName extracts the bare name of a call's callee (the method or
// function identifier, ignoring the receiver).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// levelSelectorBase matches expressions of the form ident.Level and
// returns the object of ident.
func levelSelectorBase(pass *Pass, e ast.Expr) (types.Object, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Level" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	return obj, true
}

package analysis_test

import (
	"testing"

	"crophe/internal/analysis"
	"crophe/internal/analysis/analysistest"
)

func TestModArith(t *testing.T) {
	analysistest.Run(t, analysis.ModArith, "modarith/a")
}

func TestLevelCheck(t *testing.T) {
	analysistest.Run(t, analysis.LevelCheck, "levelcheck/ckks")
}

func TestPanicPolicyLibrary(t *testing.T) {
	analysistest.Run(t, analysis.PanicPolicy, "panicpolicy/ckks")
}

func TestPanicPolicyNonLibrary(t *testing.T) {
	// The tool fixture contains bare panics but is not a library package:
	// the analyzer must stay silent.
	analysistest.Run(t, analysis.PanicPolicy, "panicpolicy/tool")
}

func TestParamCopy(t *testing.T) {
	analysistest.Run(t, analysis.ParamCopy, "paramcopy/a")
}

func TestTelemetryGuard(t *testing.T) {
	analysistest.Run(t, analysis.TelemetryGuard, "telemetryguard/sim")
}

func TestFaultSeedFaultPackage(t *testing.T) {
	analysistest.Run(t, analysis.FaultSeed, "faultseed/fault")
}

func TestFaultSeedDegradedFunctions(t *testing.T) {
	analysistest.Run(t, analysis.FaultSeed, "faultseed/sim")
}

func TestCtxBudget(t *testing.T) {
	analysistest.Run(t, analysis.CtxBudget, "ctxbudget/serve")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/a")
}

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysis.LockSafe, "locksafe/a")
}

func TestReleaseCheck(t *testing.T) {
	analysistest.Run(t, analysis.ReleaseCheck, "releasecheck/a")
}

// TestSuiteRegistry pins the analyzer set cmd/crophe-lint runs, so adding
// an analyzer without wiring it into All() fails loudly.
func TestSuiteRegistry(t *testing.T) {
	want := []string{
		"modarith", "levelcheck", "panicpolicy", "paramcopy", "telemetryguard",
		"faultseed", "ctxbudget", "maporder", "locksafe", "releasecheck",
	}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

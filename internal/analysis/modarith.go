package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ModArith flags raw +, -, and * on uint64 values that flow from
// modmath.Modulus — the modulus value m.Q itself or the result of a
// residue-producing Modulus method — outside package modmath. Raw word
// arithmetic on residues silently wraps modulo 2^64 instead of modulo q,
// producing well-formed but wrong ciphertexts; all residue arithmetic must
// go through the Barrett/Montgomery helpers (m.Add, m.Sub, m.Mul, ...).
//
// The check is an intra-procedural taint pass: locals assigned from a
// tainted expression become tainted, and any flagged operator with a
// tainted operand is reported. Division, shifts, comparisons, and the %
// reduction idiom are deliberately exempt — they are how residues are
// legitimately consumed outside the helpers.
var ModArith = &Analyzer{
	Name: "modarith",
	Doc: "flags raw +/-/* on uint64 values flowing from modmath.Modulus " +
		"outside internal/modmath; use the Barrett/Shoup helpers instead",
	Run: runModArith,
}

// residueMethods are the Modulus methods whose uint64 results are reduced
// residues (or the modulus itself) and must not meet raw word arithmetic.
var residueMethods = map[string]bool{
	"Add": true, "Sub": true, "Neg": true, "Mul": true, "MulAdd": true,
	"MulShoup": true, "Reduce": true, "Pow": true, "Inv": true,
	"ShoupPrecomp": true,
}

func runModArith(pass *Pass) error {
	// The helpers themselves implement the reductions with raw word ops;
	// that is the one place they belong.
	if pass.Pkg.Name() == "modmath" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkModArithBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkModArithBody runs the taint pass over one function body. A single
// forward pass in source order tracks assignments; Go's definite-assignment
// rules mean a local is assigned before first use in straight-line code,
// which is all this heuristic promises.
func checkModArithBody(pass *Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	exprTainted := func(e ast.Expr) bool { return false }
	exprTainted = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return tainted[obj]
			}
		case *ast.ParenExpr:
			return exprTainted(x.X)
		case *ast.SelectorExpr:
			// m.Q on a modmath.Modulus value.
			if x.Sel.Name == "Q" {
				if t, ok := pass.Info.Types[x.X]; ok && isNamed(t.Type, "modmath", "Modulus") {
					return true
				}
			}
		case *ast.CallExpr:
			// m.Mul(...), m.Reduce(...), etc.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && residueMethods[sel.Sel.Name] {
				if t, ok := pass.Info.Types[sel.X]; ok && isNamed(t.Type, "modmath", "Modulus") {
					return true
				}
			}
		case *ast.BinaryExpr:
			return exprTainted(x.X) || exprTainted(x.Y)
		}
		return false
	}

	rawOp := func(op token.Token) bool {
		return op == token.ADD || op == token.SUB || op == token.MUL
	}
	isUint64 := func(e ast.Expr) bool {
		t, ok := pass.Info.Types[e]
		if !ok || t.Type == nil {
			return false
		}
		b, ok := t.Type.Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Uint64 || b.Kind() == types.UntypedInt)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Flag compound ops first: r += m.Q, r *= residue, ...
			compound := map[token.Token]token.Token{
				token.ADD_ASSIGN: token.ADD,
				token.SUB_ASSIGN: token.SUB,
				token.MUL_ASSIGN: token.MUL,
			}
			if op, ok := compound[st.Tok]; ok && len(st.Lhs) == 1 {
				if exprTainted(st.Lhs[0]) || exprTainted(st.Rhs[0]) {
					pass.Reportf(st.Pos(),
						"raw %s= on a modmath residue; use the Modulus helpers (m.Add/m.Sub/m.Mul)", op)
				}
				return true
			}
			// Propagate taint through := and = with matching arity.
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					tainted[obj] = exprTainted(st.Rhs[i])
				}
			}
		case *ast.BinaryExpr:
			if rawOp(st.Op) && isUint64(st) && (exprTainted(st.X) || exprTainted(st.Y)) {
				pass.Reportf(st.OpPos,
					"raw %s on a modmath residue; use the Modulus helpers (m.Add/m.Sub/m.Mul)", st.Op)
			}
		}
		return true
	})
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModArith flags raw +, -, and * on uint64 values that flow from
// modmath.Modulus — the modulus value m.Q itself or the result of a
// residue-producing Modulus method — outside package modmath. Raw word
// arithmetic on residues silently wraps modulo 2^64 instead of modulo q,
// producing well-formed but wrong ciphertexts; all residue arithmetic must
// go through the Barrett/Montgomery helpers (m.Add, m.Sub, m.Mul, ...).
//
// The check is an intra-procedural taint pass: locals assigned from a
// tainted expression become tainted, and any flagged operator with a
// tainted operand is reported. Division, shifts, comparisons, and the %
// reduction idiom are deliberately exempt — they are how residues are
// legitimately consumed outside the helpers.
//
// A second taint class tracks LAZY (redundant) residues — the [0, 2q) and
// [0, 4q) values produced by the *Lazy methods and the butterfly helpers.
// Returning one from an exported function not itself named *Lazy is
// flagged: the redundant-range contract must not silently cross an API
// boundary.
var ModArith = &Analyzer{
	Name: "modarith",
	Doc: "flags raw +/-/* on uint64 values flowing from modmath.Modulus " +
		"outside internal/modmath, and lazy 2q-residues escaping exported " +
		"non-Lazy functions; use the Barrett/Shoup helpers and correct " +
		"redundant residues at API boundaries",
	Run: runModArith,
}

// residueMethods are the Modulus methods whose uint64 results are reduced
// residues (or the modulus itself) and must not meet raw word arithmetic.
var residueMethods = map[string]bool{
	"Add": true, "Sub": true, "Neg": true, "Mul": true, "MulAdd": true,
	"MulShoup": true, "Reduce": true, "Pow": true, "Inv": true,
	"ShoupPrecomp": true,
	// Lazy producers: their redundant results are residues too — raw word
	// arithmetic on them is just as wrong.
	"MulShoupLazy": true, "AddLazy": true, "SubLazy": true,
	"ReduceTwoQ": true, "ReduceFourQ": true, "CorrectLazy": true,
}

// lazyMethods are the Modulus methods whose results are REDUNDANT
// residues — in [0, 2q) rather than canonical [0, q). The kernel layer
// carries them freely across butterfly stages, but they must be corrected
// (CorrectLazy / ReduceFourQ / a reducing Vec kernel) before crossing an
// exported API boundary: a caller treating a 2q-residue as canonical
// silently computes with the wrong representative.
var lazyMethods = map[string]bool{
	"MulShoupLazy": true, "AddLazy": true, "SubLazy": true, "ReduceTwoQ": true,
}

// lazyTupleMethods return a pair of redundant residues.
var lazyTupleMethods = map[string]bool{
	"CTButterflyLazy": true, "GSButterflyLazy": true,
}

func runModArith(pass *Pass) error {
	// The helpers themselves implement the reductions with raw word ops;
	// that is the one place they belong.
	if pass.Pkg.Name() == "modmath" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				name = fn.Name.Name
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkModArithBody(pass, name, body)
			}
			return true
		})
	}
	return nil
}

// checkModArithBody runs the taint pass over one function body. A single
// forward pass in source order tracks assignments; Go's definite-assignment
// rules mean a local is assigned before first use in straight-line code,
// which is all this heuristic promises. fnName is the enclosing FuncDecl
// name ("" for function literals); exported non-"Lazy" functions are
// additionally checked for lazy residues escaping through their returns.
func checkModArithBody(pass *Pass, fnName string, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	lazy := make(map[types.Object]bool)

	// Escape checking applies to exported API: an unexported helper may
	// hand redundant residues to its callers within the package, and a
	// "Lazy" suffix (the modmath convention) advertises the
	// redundant-range contract.
	checkEscape := fnName != "" && ast.IsExported(fnName) &&
		!strings.HasSuffix(fnName, "Lazy")

	exprTainted := func(e ast.Expr) bool { return false }
	exprTainted = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return tainted[obj]
			}
		case *ast.ParenExpr:
			return exprTainted(x.X)
		case *ast.SelectorExpr:
			// m.Q on a modmath.Modulus value.
			if x.Sel.Name == "Q" {
				if t, ok := pass.Info.Types[x.X]; ok && isNamed(t.Type, "modmath", "Modulus") {
					return true
				}
			}
		case *ast.CallExpr:
			// m.Mul(...), m.Reduce(...), etc.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && residueMethods[sel.Sel.Name] {
				if t, ok := pass.Info.Types[sel.X]; ok && isNamed(t.Type, "modmath", "Modulus") {
					return true
				}
			}
		case *ast.BinaryExpr:
			return exprTainted(x.X) || exprTainted(x.Y)
		}
		return false
	}

	// lazyExpr reports whether e carries a redundant (2q/4q) residue:
	// a direct lazy-producer call or a local previously assigned one.
	// Correction calls (CorrectLazy, ReduceFourQ, the reducing helpers)
	// are residue-producing but not lazy, so they clear the property.
	var lazyExpr func(e ast.Expr) bool
	lazyExpr = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return lazy[obj]
			}
		case *ast.ParenExpr:
			return lazyExpr(x.X)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && lazyMethods[sel.Sel.Name] {
				if t, ok := pass.Info.Types[sel.X]; ok && isNamed(t.Type, "modmath", "Modulus") {
					return true
				}
			}
		}
		return false
	}

	// lazyTupleCall reports whether e is a butterfly call returning a pair
	// of redundant residues.
	lazyTupleCall := func(e ast.Expr) bool {
		x, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || !lazyTupleMethods[sel.Sel.Name] {
			return false
		}
		t, ok := pass.Info.Types[sel.X]
		return ok && isNamed(t.Type, "modmath", "Modulus")
	}

	rawOp := func(op token.Token) bool {
		return op == token.ADD || op == token.SUB || op == token.MUL
	}
	isUint64 := func(e ast.Expr) bool {
		t, ok := pass.Info.Types[e]
		if !ok || t.Type == nil {
			return false
		}
		b, ok := t.Type.Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Uint64 || b.Kind() == types.UntypedInt)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Flag compound ops first: r += m.Q, r *= residue, ...
			compound := map[token.Token]token.Token{
				token.ADD_ASSIGN: token.ADD,
				token.SUB_ASSIGN: token.SUB,
				token.MUL_ASSIGN: token.MUL,
			}
			if op, ok := compound[st.Tok]; ok && len(st.Lhs) == 1 {
				if exprTainted(st.Lhs[0]) || exprTainted(st.Rhs[0]) {
					pass.Reportf(st.Pos(),
						"raw %s= on a modmath residue; use the Modulus helpers (m.Add/m.Sub/m.Mul)", op)
				}
				return true
			}
			// Propagate taint through := and = with matching arity.
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					tainted[obj] = exprTainted(st.Rhs[i])
					lazy[obj] = lazyExpr(st.Rhs[i])
				}
			}
			// u, v := m.CTButterflyLazy(...): both results are redundant.
			if len(st.Rhs) == 1 && len(st.Lhs) == 2 && lazyTupleCall(st.Rhs[0]) {
				for _, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil {
						tainted[obj] = true
						lazy[obj] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if rawOp(st.Op) && isUint64(st) && (exprTainted(st.X) || exprTainted(st.Y)) {
				pass.Reportf(st.OpPos,
					"raw %s on a modmath residue; use the Modulus helpers (m.Add/m.Sub/m.Mul)", st.Op)
			}
		case *ast.ReturnStmt:
			if !checkEscape {
				return true
			}
			for _, res := range st.Results {
				if lazyExpr(res) || lazyTupleCall(res) {
					pass.Reportf(st.Pos(),
						"lazy 2q-residue escapes exported function %s; correct with m.CorrectLazy or m.ReduceFourQ (or name the function *Lazy)", fnName)
					break
				}
			}
		case *ast.FuncLit:
			// Literals get their own pass (with escape checking off);
			// descending here would double-report their findings and
			// mis-attribute their returns to the enclosing function.
			return false
		}
		return true
	})
}

package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPolicy forbids bare panic(...) in library packages. A panic whose
// message is a fixed string or a naked error value gives the operator of a
// production service nothing to correlate the crash with (which level?
// which limb? which parameter set?). Library panics must either become
// returned errors or carry context built with fmt.Sprintf/fmt.Errorf.
// Command, example, and simulator-driver packages are exempt: a CLI is
// allowed to die loudly.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc: "forbids bare panic(...) in library packages (ckks, poly, sched, " +
		"sim, boot); panics must carry context via fmt.Sprintf/fmt.Errorf " +
		"or become returned errors",
	Run: runPanicPolicy,
}

// panicLibraryPackages lists the package names in which the policy is
// enforced — the functional substrate and scheduler packages whose callers
// need actionable failure context. Matching by package name keeps the
// analyzer testable against fixture packages.
var panicLibraryPackages = map[string]bool{
	"ckks": true, "poly": true, "sched": true, "sim": true, "boot": true,
}

func runPanicPolicy(pass *Pass) error {
	if !panicLibraryPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Confirm it is the builtin, not a shadowing function.
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			if len(call.Args) == 1 && isContextualPanicArg(call.Args[0]) {
				return true
			}
			pass.Reportf(call.Pos(),
				"bare panic in library package %s: build the message with fmt.Sprintf/fmt.Errorf "+
					"(include the offending values) or return an error", pass.Pkg.Name())
			return true
		})
	}
	return nil
}

// isContextualPanicArg reports whether the panic argument is a
// fmt.Sprintf/fmt.Errorf call — i.e. a message that interpolates context.
func isContextualPanicArg(arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return false
	}
	return sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf"
}

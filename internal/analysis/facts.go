package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The facts layer is the interprocedural substrate shared by every
// analyzer in the suite: a cheap package-level call graph plus
// per-function summaries, computed once per package and attached to each
// Pass. Analyzers that reason about dynamic behaviour — does this call
// block, does it acquire a pool token, does it write to an
// order-sensitive sink — consult the facts instead of pattern-matching
// literal call sites, so a check sees through helper functions
// (acquireSlot wrapping Queue.Acquire, an emit helper wrapping
// fmt.Fprintf) rather than only the raw operation.
//
// Facts are package-local by design: edges into other packages are not
// followed, which keeps the computation a single AST walk per package and
// keeps analyzers honest about what they can actually prove. Transitive
// queries (Blocks, EmitsOrdered) close over the package call graph with a
// cycle-safe depth-first search, so recursion and mutual recursion
// terminate and a cycle contributes exactly its members' direct facts.

// FuncFact is the direct (non-transitive) summary of one function or
// method declared in the package. Positions are token.NoPos when the
// corresponding behaviour is absent.
type FuncFact struct {
	// Decl is the declaration the summary was computed from.
	Decl *ast.FuncDecl
	// Fn is the types object of the declaration.
	Fn *types.Func

	// BlockPos/BlockDesc record the first operation in the body that can
	// block the calling goroutine: a channel send or receive, a select
	// with no default, a range over a channel, sync.WaitGroup.Wait,
	// sync.Cond.Wait, parallel.Queue.Acquire, a worker-pool submission
	// (parallel.For/ForChunk), or time.Sleep. Operations inside `go` and
	// `defer` statements are excluded — they do not block this frame at
	// this point.
	BlockPos  token.Pos
	BlockDesc string

	// AcquirePos/AcquireDesc record the first lease acquisition in the
	// body: parallel.Queue.Acquire/TryAcquire (which hand out release
	// closures borrowing the shared token budget) or a call returning an
	// arena/scratch lease (a pointer to a type with a release/Release
	// method).
	AcquirePos  token.Pos
	AcquireDesc string

	// ReturnsLease reports that the function acquires a lease and hands
	// it to its caller through a return value — the acquireSlot pattern.
	// Callers of such a function hold the release obligation themselves.
	ReturnsLease bool

	// OrderedSinkPos/OrderedSinkDesc record the first write the body
	// makes to an order-sensitive sink: an io.Writer-style Write*
	// method, fmt.Fprint*/Print*, or telemetry span emission (spans
	// serialise in emission order). Feeding such a function from a map
	// iteration makes the output depend on map order.
	OrderedSinkPos  token.Pos
	OrderedSinkDesc string

	// Callees lists the package-local functions this body references
	// (calls, method values, function values — any use of the object),
	// deduplicated, in source order.
	Callees []*types.Func
}

// Facts is the per-package fact set. Compute it with ComputeFacts or
// retrieve it from a Pass via Facts().
type Facts struct {
	funcs map[*types.Func]*FuncFact

	blocksMemo  map[*types.Func]*transResult
	orderedMemo map[*types.Func]*transResult
}

// transResult caches a positive transitive query answer.
type transResult struct {
	pos   token.Pos
	desc  string
	chain []string // call path from the queried function to the operation
}

// Facts returns the package facts for this pass, computing them on first
// use. Run() shares one Facts across all analyzers of a package.
func (p *Pass) Facts() *Facts {
	if p.facts == nil {
		p.facts = ComputeFacts(p.Fset, p.Files, p.Pkg, p.Info)
	}
	return p.facts
}

// Fact returns the direct summary for fn, or nil when fn is not declared
// in this package.
func (f *Facts) Fact(fn *types.Func) *FuncFact {
	if f == nil || fn == nil {
		return nil
	}
	return f.funcs[fn]
}

// Funcs returns the summarised functions in deterministic (position)
// order — primarily for tests and debugging.
func (f *Facts) Funcs() []*FuncFact {
	out := make([]*FuncFact, 0, len(f.funcs))
	for _, ff := range f.funcs {
		out = append(out, ff)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Blocks reports whether calling fn can block, either directly or through
// package-local callees. chain names the call path down to the blocking
// operation (starting at fn's own name for a direct block).
func (f *Facts) Blocks(fn *types.Func) (pos token.Pos, desc string, chain []string, ok bool) {
	r := f.transitive(fn, f.blocksMemo, func(ff *FuncFact) (token.Pos, string, bool) {
		return ff.BlockPos, ff.BlockDesc, ff.BlockPos.IsValid()
	})
	if r == nil {
		return token.NoPos, "", nil, false
	}
	return r.pos, r.desc, r.chain, true
}

// EmitsOrdered reports whether calling fn writes to an order-sensitive
// sink, directly or through package-local callees.
func (f *Facts) EmitsOrdered(fn *types.Func) (pos token.Pos, desc string, chain []string, ok bool) {
	r := f.transitive(fn, f.orderedMemo, func(ff *FuncFact) (token.Pos, string, bool) {
		return ff.OrderedSinkPos, ff.OrderedSinkDesc, ff.OrderedSinkPos.IsValid()
	})
	if r == nil {
		return token.NoPos, "", nil, false
	}
	return r.pos, r.desc, r.chain, true
}

// ReturnsLease reports whether fn hands a lease it acquired to its
// caller (directly, or by forwarding another lease-returning function's
// result — the fixpoint in ComputeFacts already folded that in).
func (f *Facts) ReturnsLease(fn *types.Func) bool {
	ff := f.Fact(fn)
	return ff != nil && ff.ReturnsLease
}

// transitive runs a cycle-safe DFS over the package call graph rooted at
// fn, returning the first reachable function whose direct fact matches.
// Positive answers are memoised; members of a cycle are simply not
// revisited within one root's search, so recursion terminates.
func (f *Facts) transitive(fn *types.Func, memo map[*types.Func]*transResult,
	direct func(*FuncFact) (token.Pos, string, bool)) *transResult {
	if f == nil || fn == nil {
		return nil
	}
	if r, ok := memo[fn]; ok {
		return r
	}
	visited := map[*types.Func]bool{}
	var dfs func(cur *types.Func) *transResult
	dfs = func(cur *types.Func) *transResult {
		if visited[cur] {
			return nil
		}
		visited[cur] = true
		ff := f.funcs[cur]
		if ff == nil {
			return nil
		}
		if pos, desc, ok := direct(ff); ok {
			return &transResult{pos: pos, desc: desc, chain: []string{cur.Name()}}
		}
		for _, callee := range ff.Callees {
			if r := dfs(callee); r != nil {
				return &transResult{pos: r.pos, desc: r.desc,
					chain: append([]string{cur.Name()}, r.chain...)}
			}
		}
		return nil
	}
	r := dfs(fn)
	if r != nil {
		memo[fn] = r
	}
	return r
}

// ComputeFacts builds the fact set for one type-checked package.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Facts {
	f := &Facts{
		funcs:       map[*types.Func]*FuncFact{},
		blocksMemo:  map[*types.Func]*transResult{},
		orderedMemo: map[*types.Func]*transResult{},
	}

	// Pass 1: register declarations, so callee resolution can restrict to
	// package-local functions that actually have bodies here.
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f.funcs[fn] = &FuncFact{Decl: fd, Fn: fn}
		}
	}

	// Pass 2: scan bodies for direct facts and call edges.
	for _, ff := range f.funcs {
		scanFunc(info, pkg, ff, f.funcs)
	}

	// Pass 3: ReturnsLease fixpoint — a function forwarding the result of
	// another lease-returning function (acquireSlot calling Acquire, a
	// wrapper calling acquireSlot) is itself lease-returning. The loop
	// terminates because the flag only ever flips false → true.
	for changed := true; changed; {
		changed = false
		for _, ff := range f.funcs {
			if ff.ReturnsLease {
				continue
			}
			if returnsLease(info, ff, f.funcs) {
				ff.ReturnsLease = true
				changed = true
			}
		}
	}
	return f
}

// scanFunc fills one FuncFact's direct facts and call edges.
func scanFunc(info *types.Info, pkg *types.Package, ff *FuncFact, local map[*types.Func]*FuncFact) {
	seen := map[*types.Func]bool{}

	// Call edges: every use of a package-local declared function counts —
	// direct calls, method calls, and method/function values (a method
	// value stored in a variable is called somewhere; the conservative
	// edge keeps transitive facts sound). References inside go/defer
	// statements are excluded: that work runs on another goroutine or at
	// frame exit, so charging its behaviour to this frame's call sites
	// would make the transitive queries wildly over-approximate.
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() != pkg || local[fn] == nil || seen[fn] {
			return true
		}
		seen[fn] = true
		ff.Callees = append(ff.Callees, fn)
		return true
	})

	scanBlocking(info, ff.Decl.Body, func(pos token.Pos, desc string) {
		if !ff.BlockPos.IsValid() {
			ff.BlockPos, ff.BlockDesc = pos, desc
		}
	})

	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc, ok := leaseSource(info, call, nil); ok && !ff.AcquirePos.IsValid() {
			ff.AcquirePos, ff.AcquireDesc = call.Pos(), desc
		}
		if desc, ok := orderedSinkCall(info, call); ok && !ff.OrderedSinkPos.IsValid() {
			ff.OrderedSinkPos, ff.OrderedSinkDesc = call.Pos(), desc
		}
		return true
	})
}

// scanBlocking walks n reporting operations that can block the current
// goroutine. Bodies of `go` and `defer` statements are skipped (they run
// on another goroutine or at frame exit), and the communication clauses
// of a select with a default case are non-blocking by construction.
func scanBlocking(info *types.Info, n ast.Node, emit func(token.Pos, string)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			// A closure body runs in its own frame at some other time (or
			// never); charging its operations to the enclosing function
			// would make Blocks wildly over-approximate.
			return false
		case *ast.SendStmt:
			emit(s.Pos(), "channel send")
			return true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				emit(s.Pos(), "channel receive")
			}
			return true
		case *ast.RangeStmt:
			if tv, ok := info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					emit(s.Pos(), "range over channel")
				}
			}
			return true
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				emit(s.Pos(), "select with no default case")
			}
			// Clause headers are non-blocking either way (a select
			// commits to at most one ready case); only the bodies can
			// block.
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						scanBlocking(info, st, emit)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if desc, ok := blockingCall(info, s); ok {
				emit(s.Pos(), desc)
			}
			return true
		}
		return true
	})
}

// blockingCall classifies calls that can block the calling goroutine.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkgName, name := fn.Pkg().Name(), fn.Name()
	recv := recvNamedType(fn)
	switch {
	case pkgName == "sync" && name == "Wait" && recv == "WaitGroup":
		return "sync.WaitGroup.Wait", true
	case pkgName == "sync" && name == "Wait" && recv == "Cond":
		return "sync.Cond.Wait", true
	case pkgName == "parallel" && name == "Acquire" && recv == "Queue":
		return "parallel.Queue.Acquire", true
	case pkgName == "parallel" && (name == "For" || name == "ForChunk") && recv == "":
		return "worker-pool submission (parallel." + name + ")", true
	case pkgName == "time" && name == "Sleep" && recv == "":
		return "time.Sleep", true
	}
	return "", false
}

// leaseSource classifies calls that hand out a lease the caller must
// release: Queue.Acquire/TryAcquire release closures, arena/scratch
// leases (any call whose first result is a pointer to a type with a
// niladic release/Release method), and package-local helpers whose
// ReturnsLease fact is set (pass facts == nil to restrict to direct
// sources, as the facts builder itself must).
func leaseSource(info *types.Info, call *ast.CallExpr, facts *Facts) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Name() == "parallel" && recvNamedType(fn) == "Queue" {
		switch fn.Name() {
		case "Acquire":
			return "parallel.Queue.Acquire", true
		case "TryAcquire":
			return "parallel.Queue.TryAcquire", true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
		if name, ok := leaseTypeName(sig.Results().At(0).Type()); ok {
			return name + " lease from " + fn.Name(), true
		}
	}
	if facts != nil && facts.ReturnsLease(fn) {
		return "lease returned by " + fn.Name(), true
	}
	return "", false
}

// leaseTypeName reports whether t is a pointer to a named type exposing a
// niladic release/Release method — the arena/scratch lease shape.
func leaseTypeName(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	ms := types.NewMethodSet(ptr)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		if fn.Name() != "release" && fn.Name() != "Release" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return named.Obj().Name(), true
		}
	}
	return "", false
}

// orderedSinkCall classifies calls that write their arguments to an
// order-sensitive sink: stream writers (Write*/Fprint*/Print*), span
// emission (trace events serialise in emission order), and hash input.
// Counter emission (EmitCounter) is deliberately excluded — counters
// accumulate commutatively and export name-sorted.
func orderedSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Name() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + name, true
		}
	}
	if recv := recvNamedType(fn); recv != "" {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return recv + "." + name, true
		case "EmitSpan":
			if isNamed(recvType(fn), "telemetry", "Collector") {
				return "telemetry span emission", true
			}
		}
	}
	return "", false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function-typed values and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := stripParens(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvType returns the receiver type of a method, or nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// recvNamedType returns the name of a method's receiver named type
// (pointers unwrapped), or "" for plain functions.
func recvNamedType(fn *types.Func) string {
	n := namedType(recvType(fn))
	if n == nil || n.Obj() == nil {
		return ""
	}
	return n.Obj().Name()
}

// returnsLease reports whether ff returns a lease it acquired: a lease
// source's result either returned directly or bound to a variable that
// reaches a return statement.
func returnsLease(info *types.Info, ff *FuncFact, local map[*types.Func]*FuncFact) bool {
	// Variables bound from lease sources.
	leaseVars := map[types.Object]bool{}
	directReturn := false
	facts := &Facts{funcs: local} // ReturnsLease lookups against the current fixpoint state
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := stripParens(s.Rhs[0]).(*ast.CallExpr); ok {
					if _, ok := leaseSource(info, call, facts); ok {
						if id, ok := s.Lhs[0].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								leaseVars[obj] = true
							} else if obj := info.Uses[id]; obj != nil {
								leaseVars[obj] = true
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if call, ok := stripParens(res).(*ast.CallExpr); ok {
					if _, ok := leaseSource(info, call, facts); ok {
						directReturn = true
					}
				}
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && leaseVars[obj] {
							directReturn = true
						}
					}
					return !directReturn
				})
			}
		}
		return !directReturn
	})
	return directReturn
}

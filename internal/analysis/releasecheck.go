package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleaseCheck enforces the lease discipline around the shared resources
// the stack hands out through release closures and arena objects: a
// parallel.Queue.Acquire/TryAcquire token (one of the bounded worker-slot
// budget — leaking one permanently shrinks serving capacity) and
// arena/scratch leases (*ksArena-style objects with a release method).
// Every acquisition must be released on every path: the canonical form is
// `defer release()` right after the validity check. The analyzer flags
// leases that are never released, leases leaked by an early return, and
// manual (non-deferred) releases separated from the acquisition by
// panic-capable calls — a panic there leaks the lease even though the
// happy path looks balanced. Handing the lease to someone else (returning
// it, storing it in a struct, passing it to a call, capturing it in a
// closure) transfers the obligation and is accepted.
//
// The facts layer makes the check interprocedural: package-local helpers
// that forward a lease to their caller (the acquireSlot pattern) are
// themselves lease sources, so their callers are held to the same
// discipline.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc: "requires pool-token release closures and arena/scratch leases " +
		"to be released on every path (defer, or proven hand-off), since a " +
		"leaked token permanently shrinks the worker budget",
	Run: runReleaseCheck,
}

func runReleaseCheck(pass *Pass) error {
	c := &releaseChecker{pass: pass, facts: pass.Facts()}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFrame(fn.Body)
				}
			case *ast.FuncLit:
				// Closures are audited as their own frames (a per-chunk
				// worker body acquires and must release its own arena).
				c.checkFrame(fn.Body)
			}
			return true
		})
	}
	return nil
}

type releaseChecker struct {
	pass  *Pass
	facts *Facts
}

// acquisition is one audited lease-acquiring assignment.
type acquisition struct {
	call     *ast.CallExpr
	desc     string
	leaseObj types.Object
	guardObj types.Object // err/ok validity result, nil when none
	guardErr bool         // guard is an error (valid when nil) vs bool (valid when true)
}

// checkFrame audits every acquisition in one function frame. Nested
// function literals are separate frames and are skipped here (the
// file-level walk visits them on its own).
func (c *releaseChecker) checkFrame(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.FuncLit:
			if s.Body != body {
				return false
			}
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		for i, st := range list {
			switch s := st.(type) {
			case *ast.AssignStmt:
				if acq := c.acquisition(s); acq != nil {
					c.audit(acq, list[i+1:])
				}
			case *ast.IfStmt:
				// if release, ok := q.TryAcquire(); ok { ... } — the lease
				// is scoped to the if statement; the valid branch carries
				// the whole obligation.
				init, ok := s.Init.(*ast.AssignStmt)
				if !ok {
					continue
				}
				acq := c.acquisition(init)
				if acq == nil || acq.leaseObj == nil {
					continue
				}
				switch c.guardForm(s.Cond, acq) {
				case guardValid:
					c.audit(acq, s.Body.List)
				case guardInvalid:
					if els, ok := s.Else.(*ast.BlockStmt); ok {
						c.audit(acq, els.List)
					} else {
						c.pass.Reportf(acq.call.Pos(),
							"%s goes out of scope without a release path: the "+
								"valid-lease branch never releases it", acq.desc)
					}
				}
			}
		}
		return true
	})
}

// acquisition recognises `lease[, guards...] := <lease source>(...)`. The
// lease is the source's first result by convention (release closures and
// arena pointers lead the result list everywhere in the tree).
func (c *releaseChecker) acquisition(as *ast.AssignStmt) *acquisition {
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return nil
	}
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := stripParens(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	desc, ok := leaseSource(c.pass.Info, call, c.facts)
	if !ok {
		return nil
	}
	leaseID, ok := stripParens(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	acq := &acquisition{call: call, desc: desc}
	if leaseID.Name == "_" {
		c.pass.Reportf(as.Pos(),
			"%s assigned to the blank identifier: the lease can never be "+
				"released, permanently consuming the token/arena", desc)
		return nil
	}
	acq.leaseObj = lhsObject(c.pass, leaseID)
	if acq.leaseObj == nil {
		return nil
	}

	// Validity guard: an error result (valid when nil) wins over a bool
	// (valid when true) when both are present (the acquireSlot shape).
	fn := calleeFunc(c.pass.Info, call)
	if fn == nil {
		return acq
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(as.Lhs) {
		return acq
	}
	for i := 1; i < len(as.Lhs); i++ {
		id, ok := stripParens(as.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		rt := sig.Results().At(i).Type()
		switch {
		case isErrorType(rt):
			acq.guardObj, acq.guardErr = lhsObject(c.pass, id), true
		case isBoolType(rt) && acq.guardObj == nil:
			acq.guardObj, acq.guardErr = lhsObject(c.pass, id), false
		}
	}
	return acq
}

// audit scans the statements following an acquisition for a release on
// the valid-lease path, reporting the first violation found.
func (c *releaseChecker) audit(acq *acquisition, rest []ast.Stmt) {
	sawCall := false
	for _, st := range rest {
		if d, ok := st.(*ast.DeferStmt); ok {
			if mentionsObj(c.pass, d, acq.leaseObj) {
				return // defer release() (or a deferred closure owning it)
			}
			sawCall = true
			continue
		}
		if acq.guardObj != nil {
			if ifs, ok := st.(*ast.IfStmt); ok && mentionsObj(c.pass, ifs.Cond, acq.guardObj) {
				switch c.guardForm(ifs.Cond, acq) {
				case guardInvalid:
					// Failure branch: the lease is nil/absent there.
					continue
				case guardValid:
					c.audit(acq, ifs.Body.List)
					return
				default:
					return // unrecognised guard dataflow — assume handled
				}
			}
		}
		if mentionsObj(c.pass, st, acq.leaseObj) {
			kind, pos := c.classifyLeaseUse(st, acq.leaseObj)
			switch kind {
			case useEscape:
				return // returned/stored/passed on: obligation transferred
			case useRelease:
				if sawCall {
					c.pass.Reportf(pos,
						"%s released without defer: a panic in the calls between "+
							"acquisition and this release leaks the lease — release "+
							"with defer immediately after the validity check", acq.desc)
				}
				return
			case useReceiver:
				sawCall = true
				continue
			}
		}
		if ret := findReturn(st); ret != nil {
			c.pass.Reportf(ret.Pos(),
				"%s leaks on this return path: release it (or defer the "+
					"release immediately after acquiring)", acq.desc)
			return
		}
		if containsCall(st) {
			sawCall = true
		}
	}
	c.pass.Reportf(acq.call.Pos(),
		"%s is never released on this path: defer the release immediately "+
			"after the validity check", acq.desc)
}

type leaseUse int

const (
	useReceiver leaseUse = iota // method call on the lease (arena.alloc)
	useRelease                  // release()/x.release()/x.Release()
	useEscape                   // returned, stored, passed, or captured
)

// classifyLeaseUse decides what one statement does with the lease. Escape
// dominates (the obligation moved), then release, then plain receiver
// use.
func (c *releaseChecker) classifyLeaseUse(st ast.Stmt, lease types.Object) (leaseUse, token.Pos) {
	accounted := map[*ast.Ident]bool{}
	releasePos := token.NoPos
	escaped := false

	isLease := func(e ast.Expr) *ast.Ident {
		id, ok := stripParens(e).(*ast.Ident)
		if ok && c.pass.Info.Uses[id] == lease {
			return id
		}
		return nil
	}
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id := isLease(call.Fun); id != nil {
			// release() — calling the closure itself.
			accounted[id] = true
			if !releasePos.IsValid() {
				releasePos = call.Pos()
			}
			return true
		}
		if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok {
			if id := isLease(sel.X); id != nil {
				accounted[id] = true
				if sel.Sel.Name == "release" || sel.Sel.Name == "Release" {
					if !releasePos.IsValid() {
						releasePos = call.Pos()
					}
				}
				// Any other method is a plain use of the lease, not an
				// escape: the callee borrows the receiver for the call.
			}
		}
		return true
	})
	ast.Inspect(st, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !accounted[id] && c.pass.Info.Uses[id] == lease {
			escaped = true
		}
		return !escaped
	})
	switch {
	case escaped:
		return useEscape, token.NoPos
	case releasePos.IsValid():
		return useRelease, releasePos
	default:
		return useReceiver, token.NoPos
	}
}

type guardKind int

const (
	guardUnknown guardKind = iota
	guardValid             // condition true ⇒ the lease is valid
	guardInvalid           // condition true ⇒ acquisition failed
)

// guardForm classifies a condition mentioning the validity guard:
// `err != nil` / `!ok` gate the failure path, `err == nil` / `ok` the
// valid path.
func (c *releaseChecker) guardForm(cond ast.Expr, acq *acquisition) guardKind {
	if acq.guardObj == nil || !mentionsObj(c.pass, cond, acq.guardObj) {
		return guardUnknown
	}
	isGuard := func(e ast.Expr) bool {
		id, ok := stripParens(e).(*ast.Ident)
		return ok && c.pass.Info.Uses[id] == acq.guardObj
	}
	switch e := stripParens(cond).(type) {
	case *ast.BinaryExpr:
		nilSided := func(a, b ast.Expr) bool {
			return isGuard(a) && isNilIdent(c.pass, b) || isGuard(b) && isNilIdent(c.pass, a)
		}
		if acq.guardErr && nilSided(e.X, e.Y) {
			switch e.Op {
			case token.NEQ:
				return guardInvalid
			case token.EQL:
				return guardValid
			}
		}
	case *ast.UnaryExpr:
		if !acq.guardErr && e.Op == token.NOT && isGuard(e.X) {
			return guardInvalid
		}
	case *ast.Ident:
		if !acq.guardErr && isGuard(e) {
			return guardValid
		}
	}
	return guardUnknown
}

// mentionsObj reports whether the subtree uses obj.
func mentionsObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// findReturn locates a return inside st without descending into nested
// function literals.
func findReturn(st ast.Stmt) *ast.ReturnStmt {
	var ret *ast.ReturnStmt
	ast.Inspect(st, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if ret == nil {
				ret = s
			}
			return false
		}
		return ret == nil
	})
	return ret
}

// containsCall reports whether st contains any call (a potential panic
// site), ignoring nested function literals.
func containsCall(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			found = true
		}
		return !found
	})
	return found
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// isNilIdent matches the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := stripParens(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxBudget enforces the serving layer's deadline-propagation contract:
// inside an HTTP handler (any function or literal taking *http.Request),
// a call into the scheduling stack — a callee whose name mentions
// Schedule, Simulate or Sweep and whose first parameter is a
// context.Context — must receive a context derived from the request.
// context.Background() (or any context with no dataflow from r) silently
// severs the deadline → SearchBudget path *and* the client-disconnect
// path: the search runs unbounded for a caller that may already be gone,
// which is precisely the failure mode admission control cannot see.
// Contexts reach the scheduler legitimately either as r.Context() itself,
// through context.With* chains rooted at it, or via helpers that take the
// request (the requestBudget pattern).
var CtxBudget = &Analyzer{
	Name: "ctxbudget",
	Doc: "requires scheduling calls inside HTTP handlers to thread a " +
		"request-derived context, so per-request deadlines and client " +
		"disconnects reach the anytime search budget",
	Run: runCtxBudget,
}

func runCtxBudget(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			reqs := requestParams(pass, ftype)
			if len(reqs) == 0 {
				return true // not handler-shaped; Background is fine here
			}
			checkHandler(pass, body, reqs)
			return true // nested literals get their own scan if handler-shaped
		})
	}
	return nil
}

// requestParams collects the *http.Request parameter objects of a
// function type.
func requestParams(pass *Pass, ftype *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ftype.Params == nil {
		return out
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isNamed(obj.Type(), "http", "Request") {
				out[obj] = true
			}
		}
	}
	return out
}

// checkHandler flags scheduling calls in one handler body whose context
// argument has no dataflow from the request.
func checkHandler(pass *Pass, body *ast.BlockStmt, reqs map[types.Object]bool) {
	tracked := map[types.Object]bool{}

	// Propagate request-derivation through assignments to fixpoint: a
	// context-typed variable assigned from any expression touching the
	// request (r.Context(), context.With*(ctx, ...), requestBudget(r, ...))
	// is itself request-derived. The loop handles out-of-order helper
	// chains; it terminates because tracked only grows.
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			derived := false
			for _, rhs := range as.Rhs {
				if touchesRequest(pass, rhs, reqs, tracked) {
					derived = true
					break
				}
			}
			if !derived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && !tracked[obj] && isContextType(obj.Type()) {
					tracked[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !schedulingName(name) || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		tv, ok := pass.Info.Types[arg]
		if !ok || !isContextType(tv.Type) {
			return true
		}
		if touchesRequest(pass, arg, reqs, tracked) {
			return true
		}
		pass.Reportf(call.Pos(),
			"handler calls %s with a non-request context: derive it from "+
				"r.Context() so the client's deadline and disconnect reach the "+
				"scheduler's anytime budget", name)
		return true
	})
}

// schedulingName reports whether a callee name belongs to the scheduling
// stack's ctx-first surface. Matching is case-insensitive so unexported
// helpers (scheduleOne, runSweep) are held to the same contract as the
// façade's exported entry points.
func schedulingName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "schedule") ||
		strings.Contains(lower, "simulate") ||
		strings.Contains(lower, "sweep")
}

// touchesRequest reports whether expr has visible dataflow from the
// request: it mentions a request parameter or an already-tracked
// request-derived context.
func touchesRequest(pass *Pass, expr ast.Expr, reqs, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj != nil && (reqs[obj] || tracked[obj]) {
			found = true
		}
		return !found
	})
	return found
}

// isContextType matches context.Context (the interface itself; concrete
// implementations always flow through it in signatures).
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

package modmath

// Vectorised kernels over []uint64 residue rows — the element-wise lane
// operations of the limb-major kernel layer. Every kernel re-slices its
// operands to a common length up front (bounds-check elimination) and
// unrolls the hot loop 8-wide, mirroring the 8-lane element-wise datapath
// of the PEs. Fully-reduced kernels use a branchless masked correction
// (q < 2^62 keeps every intermediate below 2^63, so the sign bit of
// x − q is the borrow); lazy kernels keep the redundant 2q range and are
// only for callers that correct at their own boundaries.

// condSub returns x mod-corrected by one conditional (branchless)
// subtraction of q: x ∈ [0, 2q) → [0, q). Valid for q < 2^62.
func condSub(x, q uint64) uint64 {
	t := x - q
	return t + (q & uint64(int64(t)>>63))
}

// vec3 re-slices a and b to dst's length, panicking (via the slice
// expression) when either is shorter; the compiler then knows all three
// share a length and drops the per-element bounds checks.
func vec3(dst, a, b []uint64) ([]uint64, []uint64, []uint64) {
	n := len(dst)
	return dst, a[:n:n], b[:n:n]
}

// AddVec sets dst[i] = (a[i] + b[i]) mod q. Inputs must be < q.
// dst may alias a or b.
func (m Modulus) AddVec(dst, a, b []uint64) {
	dst, a, b = vec3(dst, a, b)
	q := m.Q
	n := len(dst)
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = condSub(a[i+0]+b[i+0], q)
		dst[i+1] = condSub(a[i+1]+b[i+1], q)
		dst[i+2] = condSub(a[i+2]+b[i+2], q)
		dst[i+3] = condSub(a[i+3]+b[i+3], q)
		dst[i+4] = condSub(a[i+4]+b[i+4], q)
		dst[i+5] = condSub(a[i+5]+b[i+5], q)
		dst[i+6] = condSub(a[i+6]+b[i+6], q)
		dst[i+7] = condSub(a[i+7]+b[i+7], q)
	}
	for ; i < n; i++ {
		dst[i] = condSub(a[i]+b[i], q)
	}
}

// SubVec sets dst[i] = (a[i] − b[i]) mod q. Inputs must be < q.
// dst may alias a or b.
func (m Modulus) SubVec(dst, a, b []uint64) {
	dst, a, b = vec3(dst, a, b)
	q := m.Q
	n := len(dst)
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = condSub(a[i+0]+q-b[i+0], q)
		dst[i+1] = condSub(a[i+1]+q-b[i+1], q)
		dst[i+2] = condSub(a[i+2]+q-b[i+2], q)
		dst[i+3] = condSub(a[i+3]+q-b[i+3], q)
		dst[i+4] = condSub(a[i+4]+q-b[i+4], q)
		dst[i+5] = condSub(a[i+5]+q-b[i+5], q)
		dst[i+6] = condSub(a[i+6]+q-b[i+6], q)
		dst[i+7] = condSub(a[i+7]+q-b[i+7], q)
	}
	for ; i < n; i++ {
		dst[i] = condSub(a[i]+q-b[i], q)
	}
}

// NegVec sets dst[i] = (−a[i]) mod q. Inputs must be < q.
func (m Modulus) NegVec(dst, a []uint64) {
	n := len(dst)
	a = a[:n:n]
	q := m.Q
	for i := 0; i < n; i++ {
		// q−a is q (not 0) at a=0; the masked correction folds it back.
		dst[i] = condSub(q-a[i], q)
	}
}

// MulVec sets dst[i] = a[i]·b[i] mod q via Barrett reduction (both
// operands data-dependent, so no Shoup constant applies). dst may alias.
func (m Modulus) MulVec(dst, a, b []uint64) {
	dst, a, b = vec3(dst, a, b)
	for i := range dst {
		dst[i] = m.Mul(a[i], b[i])
	}
}

// MulAddVec sets dst[i] = (dst[i] + a[i]·b[i]) mod q — the fused
// multiply-accumulate of the inner-product kernels. All inputs < q.
func (m Modulus) MulAddVec(dst, a, b []uint64) {
	dst, a, b = vec3(dst, a, b)
	q := m.Q
	for i := range dst {
		dst[i] = condSub(dst[i]+m.Mul(a[i], b[i]), q)
	}
}

// MulShoupVec sets dst[i] = a[i]·w mod q for a fixed multiplicand w < q
// with wShoup = ShoupPrecomp(w). Inputs a[i] may be any uint64
// (redundant residues included); outputs are fully reduced.
func (m Modulus) MulShoupVec(dst, a []uint64, w, wShoup uint64) {
	n := len(dst)
	a = a[:n:n]
	q := m.Q
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = condSub(m.MulShoupLazy(a[i+0], w, wShoup), q)
		dst[i+1] = condSub(m.MulShoupLazy(a[i+1], w, wShoup), q)
		dst[i+2] = condSub(m.MulShoupLazy(a[i+2], w, wShoup), q)
		dst[i+3] = condSub(m.MulShoupLazy(a[i+3], w, wShoup), q)
		dst[i+4] = condSub(m.MulShoupLazy(a[i+4], w, wShoup), q)
		dst[i+5] = condSub(m.MulShoupLazy(a[i+5], w, wShoup), q)
		dst[i+6] = condSub(m.MulShoupLazy(a[i+6], w, wShoup), q)
		dst[i+7] = condSub(m.MulShoupLazy(a[i+7], w, wShoup), q)
	}
	for ; i < n; i++ {
		dst[i] = condSub(m.MulShoupLazy(a[i], w, wShoup), q)
	}
}

// MulShoupLazyVec is MulShoupVec without the final correction: outputs
// are 2q-residues. Only for pipelines that correct at a later stage.
func (m Modulus) MulShoupLazyVec(dst, a []uint64, w, wShoup uint64) {
	n := len(dst)
	a = a[:n:n]
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = m.MulShoupLazy(a[i+0], w, wShoup)
		dst[i+1] = m.MulShoupLazy(a[i+1], w, wShoup)
		dst[i+2] = m.MulShoupLazy(a[i+2], w, wShoup)
		dst[i+3] = m.MulShoupLazy(a[i+3], w, wShoup)
		dst[i+4] = m.MulShoupLazy(a[i+4], w, wShoup)
		dst[i+5] = m.MulShoupLazy(a[i+5], w, wShoup)
		dst[i+6] = m.MulShoupLazy(a[i+6], w, wShoup)
		dst[i+7] = m.MulShoupLazy(a[i+7], w, wShoup)
	}
	for ; i < n; i++ {
		dst[i] = m.MulShoupLazy(a[i], w, wShoup)
	}
}

// MulShoupPairVec sets dst[i] = a[i]·w[i] mod q for a constant vector w
// with per-entry Shoup companions (twist and twiddle tables). Inputs
// a[i] may be redundant residues; outputs are fully reduced.
func (m Modulus) MulShoupPairVec(dst, a, w, wShoup []uint64) {
	n := len(dst)
	a, w, wShoup = a[:n:n], w[:n:n], wShoup[:n:n]
	q := m.Q
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = condSub(m.MulShoupLazy(a[i+0], w[i+0], wShoup[i+0]), q)
		dst[i+1] = condSub(m.MulShoupLazy(a[i+1], w[i+1], wShoup[i+1]), q)
		dst[i+2] = condSub(m.MulShoupLazy(a[i+2], w[i+2], wShoup[i+2]), q)
		dst[i+3] = condSub(m.MulShoupLazy(a[i+3], w[i+3], wShoup[i+3]), q)
		dst[i+4] = condSub(m.MulShoupLazy(a[i+4], w[i+4], wShoup[i+4]), q)
		dst[i+5] = condSub(m.MulShoupLazy(a[i+5], w[i+5], wShoup[i+5]), q)
		dst[i+6] = condSub(m.MulShoupLazy(a[i+6], w[i+6], wShoup[i+6]), q)
		dst[i+7] = condSub(m.MulShoupLazy(a[i+7], w[i+7], wShoup[i+7]), q)
	}
	for ; i < n; i++ {
		dst[i] = condSub(m.MulShoupLazy(a[i], w[i], wShoup[i]), q)
	}
}

// MulShoupPairLazyVec is MulShoupPairVec without the final correction:
// outputs are 2q-residues for consumption by a lazy transform stage.
func (m Modulus) MulShoupPairLazyVec(dst, a, w, wShoup []uint64) {
	n := len(dst)
	a, w, wShoup = a[:n:n], w[:n:n], wShoup[:n:n]
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = m.MulShoupLazy(a[i+0], w[i+0], wShoup[i+0])
		dst[i+1] = m.MulShoupLazy(a[i+1], w[i+1], wShoup[i+1])
		dst[i+2] = m.MulShoupLazy(a[i+2], w[i+2], wShoup[i+2])
		dst[i+3] = m.MulShoupLazy(a[i+3], w[i+3], wShoup[i+3])
		dst[i+4] = m.MulShoupLazy(a[i+4], w[i+4], wShoup[i+4])
		dst[i+5] = m.MulShoupLazy(a[i+5], w[i+5], wShoup[i+5])
		dst[i+6] = m.MulShoupLazy(a[i+6], w[i+6], wShoup[i+6])
		dst[i+7] = m.MulShoupLazy(a[i+7], w[i+7], wShoup[i+7])
	}
	for ; i < n; i++ {
		dst[i] = m.MulShoupLazy(a[i], w[i], wShoup[i])
	}
}

// MulShoupAccLazyVec accumulates acc[i] += a[i]·w (mod-lazily) keeping
// the 2q-residue invariant: each new Shoup product (< 2q) is added to
// the running 2q-residue and the 4q sum is folded once back below 2q.
// This is the BConv inner loop: k accumulations cost k conditional
// folds instead of k full Barrett reductions. Callers must start from
// 2q-residues (zeros qualify) and CorrectLazyVec at the end.
func (m Modulus) MulShoupAccLazyVec(acc, a []uint64, w, wShoup uint64) {
	n := len(acc)
	a = a[:n:n]
	twoQ := m.Q << 1
	i := 0
	for ; i+7 < n; i += 8 {
		acc[i+0] = condSub(acc[i+0]+m.MulShoupLazy(a[i+0], w, wShoup), twoQ)
		acc[i+1] = condSub(acc[i+1]+m.MulShoupLazy(a[i+1], w, wShoup), twoQ)
		acc[i+2] = condSub(acc[i+2]+m.MulShoupLazy(a[i+2], w, wShoup), twoQ)
		acc[i+3] = condSub(acc[i+3]+m.MulShoupLazy(a[i+3], w, wShoup), twoQ)
		acc[i+4] = condSub(acc[i+4]+m.MulShoupLazy(a[i+4], w, wShoup), twoQ)
		acc[i+5] = condSub(acc[i+5]+m.MulShoupLazy(a[i+5], w, wShoup), twoQ)
		acc[i+6] = condSub(acc[i+6]+m.MulShoupLazy(a[i+6], w, wShoup), twoQ)
		acc[i+7] = condSub(acc[i+7]+m.MulShoupLazy(a[i+7], w, wShoup), twoQ)
	}
	for ; i < n; i++ {
		acc[i] = condSub(acc[i]+m.MulShoupLazy(a[i], w, wShoup), twoQ)
	}
}

// CorrectLazyVec corrects 2q-residues in place to the canonical [0, q).
func (m Modulus) CorrectLazyVec(a []uint64) {
	q := m.Q
	for i, x := range a {
		a[i] = condSub(x, q)
	}
}

// ReduceFourQVec corrects 4q-residues in place to the canonical [0, q).
func (m Modulus) ReduceFourQVec(a []uint64) {
	q := m.Q
	twoQ := q << 1
	for i, x := range a {
		a[i] = condSub(condSub(x, twoQ), q)
	}
}

// SubMulShoupVec sets dst[i] = (a[i] − b[i])·w mod q for a fixed w < q —
// the fused rescale/ModDown kernel (x − correction)·c with a Shoup
// constant. a and b must be < q; outputs are fully reduced.
func (m Modulus) SubMulShoupVec(dst, a, b []uint64, w, wShoup uint64) {
	dst, a, b = vec3(dst, a, b)
	q := m.Q
	n := len(dst)
	i := 0
	for ; i+7 < n; i += 8 {
		dst[i+0] = condSub(m.MulShoupLazy(a[i+0]+q-b[i+0], w, wShoup), q)
		dst[i+1] = condSub(m.MulShoupLazy(a[i+1]+q-b[i+1], w, wShoup), q)
		dst[i+2] = condSub(m.MulShoupLazy(a[i+2]+q-b[i+2], w, wShoup), q)
		dst[i+3] = condSub(m.MulShoupLazy(a[i+3]+q-b[i+3], w, wShoup), q)
		dst[i+4] = condSub(m.MulShoupLazy(a[i+4]+q-b[i+4], w, wShoup), q)
		dst[i+5] = condSub(m.MulShoupLazy(a[i+5]+q-b[i+5], w, wShoup), q)
		dst[i+6] = condSub(m.MulShoupLazy(a[i+6]+q-b[i+6], w, wShoup), q)
		dst[i+7] = condSub(m.MulShoupLazy(a[i+7]+q-b[i+7], w, wShoup), q)
	}
	for ; i < n; i++ {
		dst[i] = condSub(m.MulShoupLazy(a[i]+q-b[i], w, wShoup), q)
	}
}

// AddScalarVec sets dst[i] = (a[i] + c) mod q for a constant c < q.
func (m Modulus) AddScalarVec(dst, a []uint64, c uint64) {
	n := len(dst)
	a = a[:n:n]
	q := m.Q
	for i := 0; i < n; i++ {
		dst[i] = condSub(a[i]+c, q)
	}
}

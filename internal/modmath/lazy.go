package modmath

import "math/bits"

// Lazy (redundant-residue) arithmetic.
//
// The butterfly datapath of the CROPHE PEs — and the software kernels in
// internal/ntt that model it — carry values in the *redundant* ranges
// [0, 2q) and [0, 4q) across butterfly stages, deferring the final
// conditional subtraction to stage or transform boundaries (Harvey,
// "Faster arithmetic for number-theoretic transforms"). With q < 2^62
// (MaxModulusBits), a sum of two [0, 2q) values never overflows uint64,
// so whole stages run without a single data-dependent branch.
//
// Naming and range contract, enforced by the modarith analyzer:
//
//   - methods whose name ends in "Lazy" return 2q-residues in [0, 2q)
//     (butterfly helpers return 4q-residues, documented per method);
//   - CorrectLazy / ReduceTwoQ / ReduceFourQ bring redundant residues
//     back toward the canonical range [0, q);
//   - every *exported* function outside this package must correct lazy
//     residues before returning them (the analyzer flags escapes).

// MulShoupLazy returns a value ≡ a·w (mod q) in [0, 2q), given
// wShoup = ShoupPrecomp(w). Unlike MulShoup it skips the final
// conditional subtraction. The operand a may be ANY uint64 (in
// particular a redundant 2q- or 4q-residue); w must be < q.
func (m Modulus) MulShoupLazy(a, w, wShoup uint64) uint64 {
	qHat, _ := bits.Mul64(a, wShoup)
	return a*w - qHat*m.Q
}

// CorrectLazy maps a 2q-residue x ∈ [0, 2q) to the canonical [0, q).
func (m Modulus) CorrectLazy(x uint64) uint64 {
	if x >= m.Q {
		x -= m.Q
	}
	return x
}

// ReduceTwoQ maps a 4q-residue x ∈ [0, 4q) to a 2q-residue in [0, 2q).
func (m Modulus) ReduceTwoQ(x uint64) uint64 {
	if twoQ := m.Q << 1; x >= twoQ {
		x -= twoQ
	}
	return x
}

// ReduceFourQ maps a 4q-residue x ∈ [0, 4q) all the way down to the
// canonical [0, q): two conditional subtractions.
func (m Modulus) ReduceFourQ(x uint64) uint64 {
	if twoQ := m.Q << 1; x >= twoQ {
		x -= twoQ
	}
	if x >= m.Q {
		x -= m.Q
	}
	return x
}

// AddLazy returns a + b with no reduction. The caller guarantees the
// true sum fits in uint64 (e.g. two 2q-residues with q < 2^62). The
// result is a 4q-residue when both inputs are 2q-residues.
func (m Modulus) AddLazy(a, b uint64) uint64 {
	_ = m
	return a + b
}

// SubLazy returns a value ≡ a − b (mod q) in [0, 4q) for a, b ∈ [0, 2q),
// by adding 2q before the subtraction instead of branching on borrow.
func (m Modulus) SubLazy(a, b uint64) uint64 {
	return a + (m.Q << 1) - b
}

// CTButterflyLazy is Harvey's lazy Cooley–Tukey butterfly
// (u, v) → (u + w·v, u − w·v) with inputs and outputs in [0, 4q):
// u is first conditionally brought into [0, 2q), the Shoup product
// w·v lands in [0, 2q), and the two outputs stay below 4q without any
// further correction. wShoup = ShoupPrecomp(w), w < q.
func (m Modulus) CTButterflyLazy(u, v, w, wShoup uint64) (uint64, uint64) {
	// Branchless masked correction: with u < 4q and 2q < 2^63 the sign
	// bit of u−2q is exactly the borrow, so the mask re-adds 2q only on
	// underflow. A data-dependent branch here mispredicts ~50% of the
	// time on random residues.
	twoQ := m.Q << 1
	d := u - twoQ
	u = d + (twoQ & uint64(int64(d)>>63))
	t := m.MulShoupLazy(v, w, wShoup)
	return u + t, u + twoQ - t
}

// GSButterflyLazy is Harvey's lazy Gentleman–Sande butterfly
// (u, v) → (u + v, (u − v)·w) with inputs and outputs in [0, 2q):
// the sum is reduced once past 2q, and the difference (lifted by 2q)
// feeds the Shoup product, whose lazy result stays below 2q.
func (m Modulus) GSButterflyLazy(u, v, w, wShoup uint64) (uint64, uint64) {
	twoQ := m.Q << 1
	d := u + v - twoQ
	s := d + (twoQ & uint64(int64(d)>>63))
	return s, m.MulShoupLazy(u+twoQ-v, w, wShoup)
}

// ShoupPrecompute fills dst[i] = ShoupPrecomp(w[i]) for every i; the
// batch form used when building twiddle and constant tables. dst and w
// must have equal length, and every w[i] must be < q.
func (m Modulus) ShoupPrecompute(dst, w []uint64) {
	if len(dst) != len(w) {
		panic("modmath: ShoupPrecompute length mismatch")
	}
	for i, x := range w {
		dst[i] = m.ShoupPrecomp(x)
	}
}

package modmath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lazyTestModuli spans the supported range: tiny, mid, and near the
// 62-bit ceiling, all NTT-friendly shapes used elsewhere in the repo.
var lazyTestModuli = []uint64{
	17, 97, 12289, 1<<45 - 55, // small → 45-bit production shape
	0x3FFFFFFFFFFFFFF1 + 0xC, // 62-bit prime 4611686018427387847? validated below
}

func primeModuli(t testing.TB) []Modulus {
	t.Helper()
	var out []Modulus
	for _, q := range lazyTestModuli {
		if !IsPrime(q) {
			// Walk down to the nearest odd prime so the table stays honest
			// even if a literal above is edited.
			for !IsPrime(q) {
				q -= 2
			}
		}
		out = append(out, MustModulus(q))
	}
	return out
}

// TestMulShoupLazyBound: for every valid input — a ANY uint64, w < q —
// the lazy product lands in [0, 2q) and agrees with Barrett after one
// correction.
func TestMulShoupLazyBound(t *testing.T) {
	for _, m := range primeModuli(t) {
		q := m.Q
		check := func(a, w uint64) bool {
			w %= q
			ws := m.ShoupPrecomp(w)
			r := m.MulShoupLazy(a, w, ws)
			if r >= 2*q {
				t.Logf("q=%d a=%d w=%d: lazy result %d ≥ 2q", q, a, w, r)
				return false
			}
			want := m.Mul(m.Reduce(a), w)
			return m.CorrectLazy(r) == want
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

// TestLazyButterflyInvariants pins the Harvey range contracts: CT maps
// [0,4q)² → [0,4q)², GS maps [0,2q)² → [0,2q)², and both agree with the
// strict butterfly after full correction.
func TestLazyButterflyInvariants(t *testing.T) {
	for _, m := range primeModuli(t) {
		q := m.Q
		rng := rand.New(rand.NewSource(int64(q)))
		for trial := 0; trial < 2000; trial++ {
			w := rng.Uint64() % q
			ws := m.ShoupPrecomp(w)

			u4 := rng.Uint64() % (4 * q)
			v4 := rng.Uint64() % (4 * q)
			x, y := m.CTButterflyLazy(u4, v4, w, ws)
			if x >= 4*q || y >= 4*q {
				t.Fatalf("q=%d CT output (%d,%d) escapes [0,4q)", q, x, y)
			}
			ur, vr := m.Reduce(u4), m.Reduce(v4)
			wv := m.Mul(vr, w)
			if m.ReduceFourQ(x) != m.Add(ur, wv) || m.ReduceFourQ(y) != m.Sub(ur, wv) {
				t.Fatalf("q=%d CT butterfly value mismatch", q)
			}

			u2 := rng.Uint64() % (2 * q)
			v2 := rng.Uint64() % (2 * q)
			s, d := m.GSButterflyLazy(u2, v2, w, ws)
			if s >= 2*q || d >= 2*q {
				t.Fatalf("q=%d GS output (%d,%d) escapes [0,2q)", q, s, d)
			}
			ur, vr = m.Reduce(u2), m.Reduce(v2)
			if m.CorrectLazy(s) != m.Add(ur, vr) || m.CorrectLazy(d) != m.Mul(m.Sub(ur, vr), w) {
				t.Fatalf("q=%d GS butterfly value mismatch", q)
			}
		}
	}
}

func TestLazyCorrections(t *testing.T) {
	for _, m := range primeModuli(t) {
		q := m.Q
		rng := rand.New(rand.NewSource(int64(q) + 1))
		for trial := 0; trial < 2000; trial++ {
			x2 := rng.Uint64() % (2 * q)
			if got := m.CorrectLazy(x2); got != m.Reduce(x2) {
				t.Fatalf("q=%d CorrectLazy(%d) = %d, want %d", q, x2, got, m.Reduce(x2))
			}
			x4 := rng.Uint64() % (4 * q)
			if got := m.ReduceFourQ(x4); got != m.Reduce(x4) {
				t.Fatalf("q=%d ReduceFourQ(%d) = %d, want %d", q, x4, got, m.Reduce(x4))
			}
			if got := m.ReduceTwoQ(x4); got >= 2*q || got != x4 && got+2*q != x4 {
				t.Fatalf("q=%d ReduceTwoQ(%d) = %d out of contract", q, x4, got)
			}
			a, b := rng.Uint64()%(2*q), rng.Uint64()%(2*q)
			if got := m.SubLazy(a, b); got >= 4*q || m.ReduceFourQ(got) != m.Sub(m.Reduce(a), m.Reduce(b)) {
				t.Fatalf("q=%d SubLazy(%d,%d) = %d out of contract", q, a, b, got)
			}
			if got := m.AddLazy(a, b); got != a+b {
				t.Fatalf("q=%d AddLazy raw sum mismatch", q)
			}
		}
	}
}

func TestShoupPrecomputeBatch(t *testing.T) {
	m := MustModulus(1<<45 - 55)
	rng := rand.New(rand.NewSource(3))
	w := make([]uint64, 37)
	for i := range w {
		w[i] = rng.Uint64() % m.Q
	}
	ws := make([]uint64, len(w))
	m.ShoupPrecompute(ws, w)
	for i := range w {
		if ws[i] != m.ShoupPrecomp(w[i]) {
			t.Fatalf("batch ShoupPrecompute disagrees at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	m.ShoupPrecompute(ws[:3], w)
}

// TestVectorKernelsMatchScalar cross-checks every vector kernel against
// the scalar helper loop it replaces, across odd lengths that exercise
// both the unrolled body and the tails.
func TestVectorKernelsMatchScalar(t *testing.T) {
	for _, m := range primeModuli(t) {
		q := m.Q
		rng := rand.New(rand.NewSource(int64(q) + 7))
		for _, n := range []int{1, 7, 8, 9, 64, 100} {
			a := make([]uint64, n)
			b := make([]uint64, n)
			for i := range a {
				a[i], b[i] = rng.Uint64()%q, rng.Uint64()%q
			}
			w := rng.Uint64() % q
			ws := m.ShoupPrecomp(w)
			wv := make([]uint64, n)
			wvs := make([]uint64, n)
			for i := range wv {
				wv[i] = rng.Uint64() % q
			}
			m.ShoupPrecompute(wvs, wv)

			got := make([]uint64, n)
			check := func(name string, want func(i int) uint64) {
				t.Helper()
				for i := range got {
					if w := want(i); got[i] != w {
						t.Fatalf("q=%d n=%d %s mismatch at %d: got %d want %d", q, n, name, i, got[i], w)
					}
				}
			}

			m.AddVec(got, a, b)
			check("AddVec", func(i int) uint64 { return m.Add(a[i], b[i]) })
			m.SubVec(got, a, b)
			check("SubVec", func(i int) uint64 { return m.Sub(a[i], b[i]) })
			m.NegVec(got, a)
			check("NegVec", func(i int) uint64 { return m.Neg(a[i]) })
			m.MulVec(got, a, b)
			check("MulVec", func(i int) uint64 { return m.Mul(a[i], b[i]) })

			copy(got, b)
			m.MulAddVec(got, a, b)
			check("MulAddVec", func(i int) uint64 { return m.MulAdd(a[i], b[i], b[i]) })

			m.MulShoupVec(got, a, w, ws)
			check("MulShoupVec", func(i int) uint64 { return m.Mul(a[i], w) })
			m.MulShoupLazyVec(got, a, w, ws)
			for i := range got {
				if got[i] >= 2*q {
					t.Fatalf("MulShoupLazyVec escapes 2q at %d", i)
				}
			}
			m.CorrectLazyVec(got)
			check("MulShoupLazyVec+Correct", func(i int) uint64 { return m.Mul(a[i], w) })

			m.MulShoupPairVec(got, a, wv, wvs)
			check("MulShoupPairVec", func(i int) uint64 { return m.Mul(a[i], wv[i]) })
			m.MulShoupPairLazyVec(got, a, wv, wvs)
			m.CorrectLazyVec(got)
			check("MulShoupPairLazyVec+Correct", func(i int) uint64 { return m.Mul(a[i], wv[i]) })

			// Lazy accumulation: three rounds, then correct.
			for i := range got {
				got[i] = 0
			}
			m.MulShoupAccLazyVec(got, a, w, ws)
			m.MulShoupAccLazyVec(got, b, w, ws)
			m.MulShoupAccLazyVec(got, a, wv[0], wvs[0])
			for i := range got {
				if got[i] >= 2*q {
					t.Fatalf("MulShoupAccLazyVec invariant broken at %d", i)
				}
			}
			m.CorrectLazyVec(got)
			check("MulShoupAccLazyVec", func(i int) uint64 {
				s := m.Add(m.Mul(a[i], w), m.Mul(b[i], w))
				return m.Add(s, m.Mul(a[i], wv[0]))
			})

			m.SubMulShoupVec(got, a, b, w, ws)
			check("SubMulShoupVec", func(i int) uint64 { return m.Mul(m.Sub(a[i], b[i]), w) })

			c := rng.Uint64() % q
			m.AddScalarVec(got, a, c)
			check("AddScalarVec", func(i int) uint64 { return m.Add(a[i], c) })

			// 4q correction kernel.
			four := make([]uint64, n)
			for i := range four {
				four[i] = rng.Uint64() % (4 * q)
			}
			copy(got, four)
			m.ReduceFourQVec(got)
			check("ReduceFourQVec", func(i int) uint64 { return m.Reduce(four[i]) })
		}
	}
}

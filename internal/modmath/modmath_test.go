package modmath

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testModuli covers a small prime, a mid-size prime, a 36-bit NTT prime
// (the SHARP/CROPHE-36 word size) and a ~60-bit prime near the top of the
// supported range.
var testModuli = []uint64{
	97,
	12289,               // 2^12·3 + 1, classic NTT prime
	0x0000000FFFFEE001,  // 36-bit-ish prime 68719403009 = 1 + 2^13·...
	1152921504606830593, // < 2^60, ≡ 1 mod 2^15
}

func init() {
	for _, q := range testModuli {
		if !IsPrime(q) {
			panic("test modulus not prime")
		}
	}
}

func TestNewModulusRejectsBad(t *testing.T) {
	for _, q := range []uint64{0, 1, 2, 4, 100} {
		if _, err := NewModulus(q); err == nil {
			t.Errorf("NewModulus(%d) should fail", q)
		}
	}
	if _, err := NewModulus(1 << 63); err == nil {
		t.Errorf("NewModulus(2^63) should fail: too wide")
	}
}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := m.Add(a, b), (a+b)%q; got != want && q < (1<<32) {
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, a, b, got, want)
			}
			// Algebraic checks valid for any width.
			if m.Sub(m.Add(a, b), b) != a {
				t.Fatalf("q=%d (a+b)-b != a", q)
			}
			if m.Add(a, m.Neg(a)) != 0 {
				t.Fatalf("q=%d a + (-a) != 0", q)
			}
		}
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		qBig := new(big.Int).SetUint64(q)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			got := m.Mul(a, b)
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, qBig)
			if got != want.Uint64() {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %s", q, a, b, got, want)
			}
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		cases := [][2]uint64{{0, 0}, {0, q - 1}, {q - 1, q - 1}, {1, q - 1}, {q / 2, 2}}
		for _, c := range cases {
			want := new(big.Int).Mul(new(big.Int).SetUint64(c[0]), new(big.Int).SetUint64(c[1]))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got := m.Mul(c[0], c[1]); got != want.Uint64() {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %s", q, c[0], c[1], got, want)
			}
		}
	}
}

func TestMulProperties(t *testing.T) {
	m := MustModulus(testModuli[3])
	q := m.Q
	commutes := func(a, b uint64) bool {
		a, b = a%q, b%q
		return m.Mul(a, b) == m.Mul(b, a)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	distributes := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		return m.Mul(a, m.Add(b, c)) == m.Add(m.Mul(a, b), m.Mul(a, c))
	}
	if err := quick.Check(distributes, nil); err != nil {
		t.Error(err)
	}
	associates := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		return m.Mul(a, m.Mul(b, c)) == m.Mul(m.Mul(a, b), c)
	}
	if err := quick.Check(associates, nil); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		if m.Pow(0, 0) != 1 {
			t.Errorf("q=%d 0^0 != 1", q)
		}
		if m.Pow(5%q, 1) != 5%q {
			t.Errorf("q=%d a^1 != a", q)
		}
		// Fermat's little theorem: a^(q-1) = 1 for a != 0.
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50; i++ {
			a := rng.Uint64()%(q-1) + 1
			if m.Pow(a, q-1) != 1 {
				t.Fatalf("q=%d Fermat fails for a=%d", q, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 200; i++ {
			a := rng.Uint64()%(q-1) + 1
			if m.Mul(a, m.Inv(a)) != 1 {
				t.Fatalf("q=%d a·a⁻¹ != 1 for a=%d", q, a)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	MustModulus(97).Inv(0)
}

func TestShoupMul(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			a := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := m.ShoupPrecomp(w)
			if got, want := m.MulShoup(a, w, ws), m.Mul(a, w); got != want {
				t.Fatalf("q=%d MulShoup(%d,%d)=%d want %d", q, a, w, got, want)
			}
		}
	}
}

func TestIsPrimeKnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 97, 12289, 786433, 4294967291}
	composites := []uint64{0, 1, 4, 6, 9, 561, 1105, 4294967295, 12289 * 12289}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestGeneratePrimes(t *testing.T) {
	for _, n := range []uint64{1 << 10, 1 << 12, 1 << 14} {
		ps, err := GeneratePrimes(45, n, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(ps) != 8 {
			t.Fatalf("n=%d: got %d primes", n, len(ps))
		}
		seen := map[uint64]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate prime %d", p)
			}
			seen[p] = true
			if !IsPrime(p) {
				t.Fatalf("%d not prime", p)
			}
			if (p-1)%(2*n) != 0 {
				t.Fatalf("%d not ≡ 1 mod %d", p, 2*n)
			}
		}
	}
}

func TestGeneratePrimesErrors(t *testing.T) {
	if _, err := GeneratePrimes(2, 1024, 1); err == nil {
		t.Error("bitLen 2 should fail")
	}
	if _, err := GeneratePrimes(63, 1024, 1); err == nil {
		t.Error("bitLen 63 should fail")
	}
	if _, err := GeneratePrimes(45, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	// Requesting far more primes than exist in the range should fail.
	if _, err := GeneratePrimes(10, 256, 100); err == nil {
		t.Error("overfull request should fail")
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, n := range []uint64{1 << 8, 1 << 10} {
		ps, err := GeneratePrimes(40, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			m := MustModulus(p)
			psi, err := RootOfUnity(m, n)
			if err != nil {
				t.Fatal(err)
			}
			// ψ^(2n) = 1, ψ^n = -1, and no smaller power hits 1.
			if m.Pow(psi, 2*n) != 1 {
				t.Fatalf("ψ^2n != 1 for q=%d", p)
			}
			if m.Pow(psi, n) != p-1 {
				t.Fatalf("ψ^n != -1 for q=%d", p)
			}
		}
	}
}

func TestRootOfUnityWrongOrder(t *testing.T) {
	m := MustModulus(97) // 96 = 2^5·3, so no 2·256-th root
	if _, err := RootOfUnity(m, 256); err == nil {
		t.Error("expected error for modulus lacking the root order")
	}
}

func TestCenteredLiftRoundTrip(t *testing.T) {
	q := uint64(12289)
	roundTrip := func(x uint64) bool {
		x %= q
		v := CenteredLift(x, q)
		if v > int64(q)/2 || v <= -int64(q)/2 {
			return false
		}
		return FromCentered(v, q) == x
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	m := MustModulus(testModuli[3])
	x, y := m.Q-12345, m.Q-98765
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
	sink = x
}

func BenchmarkMulShoup(b *testing.B) {
	m := MustModulus(testModuli[3])
	w := m.Q - 98765
	ws := m.ShoupPrecomp(w)
	x := m.Q - 12345
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = m.MulShoup(x, w, ws)
	}
	sink = x
}

var sink uint64

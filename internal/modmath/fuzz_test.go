package modmath

import (
	"math/bits"
	"testing"
)

// FuzzModMath cross-checks the Barrett/Shoup fast paths against the
// obvious math/bits reference on fuzzer-chosen moduli and operands, plus
// the algebraic identities every modular field must satisfy.
func FuzzModMath(f *testing.F) {
	f.Add(uint64(0x1000000000b00001), uint64(12345), uint64(67890))
	f.Add(uint64((1<<45)-55), uint64(1)<<44, uint64(3))
	f.Add(uint64(97), uint64(96), uint64(95))
	f.Add(uint64(3), uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, q, a, b uint64) {
		q |= 1 // odd
		q &= (1 << MaxModulusBits) - 1
		m, err := NewModulus(q)
		if err != nil {
			t.Skip()
		}
		a, b = m.Reduce(a), m.Reduce(b)

		// Mul against the 128-bit division reference.
		hi, lo := bits.Mul64(a, b)
		_, want := bits.Div64(hi%q, lo, q)
		if got := m.Mul(a, b); got != want {
			t.Fatalf("Mul(%d,%d) mod %d = %d, want %d", a, b, q, got, want)
		}

		// Add/Sub/Neg identities.
		if got := m.Sub(m.Add(a, b), b); got != a {
			t.Fatalf("(a+b)-b = %d, want a=%d (q=%d)", got, a, q)
		}
		if got := m.Add(a, m.Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d, want 0 (a=%d, q=%d)", got, a, q)
		}

		// Shoup multiplication must agree with Barrett.
		bShoup := m.ShoupPrecomp(b)
		if got := m.MulShoup(a, b, bShoup); got != m.Mul(a, b) {
			t.Fatalf("MulShoup(%d,%d) = %d, want %d (q=%d)", a, b, got, m.Mul(a, b), q)
		}

		// Lazy Shoup path: result must be a 2q-residue and agree with
		// Barrett after a single correction — including for redundant
		// first operands up to 4q (the butterfly input range).
		for _, lhs := range []uint64{a, a + q, a + 2*q, a + 3*q} {
			if lhs < a { // wrapped past 2^64 for huge q; out of contract
				continue
			}
			lz := m.MulShoupLazy(lhs, b, bShoup)
			if lz >= 2*q {
				t.Fatalf("MulShoupLazy(%d,%d) = %d escapes [0,2q) (q=%d)", lhs, b, lz, q)
			}
			if got := m.CorrectLazy(lz); got != m.Mul(a, b) {
				t.Fatalf("MulShoupLazy(%d,%d) corrected = %d, want %d (q=%d)", lhs, b, got, m.Mul(a, b), q)
			}
		}

		// Lazy butterflies preserve their range invariants and reduce to
		// the strict butterfly values.
		cu, cv := m.CTButterflyLazy(a, b, b, bShoup)
		if cu >= 4*q || cv >= 4*q {
			t.Fatalf("CTButterflyLazy escapes [0,4q): (%d,%d) q=%d", cu, cv, q)
		}
		wv := m.Mul(b, b)
		if m.ReduceFourQ(cu) != m.Add(a, wv) || m.ReduceFourQ(cv) != m.Sub(a, wv) {
			t.Fatalf("CTButterflyLazy value mismatch (a=%d b=%d q=%d)", a, b, q)
		}
		gu, gv := m.GSButterflyLazy(a, b, b, bShoup)
		if gu >= 2*q || gv >= 2*q {
			t.Fatalf("GSButterflyLazy escapes [0,2q): (%d,%d) q=%d", gu, gv, q)
		}
		if m.CorrectLazy(gu) != m.Add(a, b) || m.CorrectLazy(gv) != m.Mul(m.Sub(a, b), b) {
			t.Fatalf("GSButterflyLazy value mismatch (a=%d b=%d q=%d)", a, b, q)
		}

		// Pow consistency: a^2 == a·a, a^0 == 1.
		if got := m.Pow(a, 2); got != m.Mul(a, a) {
			t.Fatalf("Pow(a,2) = %d, want %d (a=%d, q=%d)", got, m.Mul(a, a), a, q)
		}
		if got := m.Pow(a, 0); got != 1 {
			t.Fatalf("Pow(a,0) = %d, want 1 (q=%d)", got, q)
		}

		// Inverse (prime moduli only — Inv uses Fermat).
		if a != 0 && IsPrime(q) {
			if got := m.Mul(a, m.Inv(a)); got != 1 {
				t.Fatalf("a·a^-1 = %d, want 1 (a=%d, q=%d)", got, a, q)
			}
		}

		// Reduce always lands in range.
		if x := m.Reduce(a + b); x >= q {
			t.Fatalf("Reduce(%d) = %d escapes [0,%d)", a+b, x, q)
		}

		// Checksum kernels against the obvious scalar loops. The vector
		// mixes canonical and redundant (up to 4q) residues, which the
		// lazy 128-bit accumulators must absorb.
		// (a+3q < 4q < 2^64 since q < 2^62, so no entry wraps.)
		vec := []uint64{a, b, m.Add(a, b), m.Mul(a, b), a + q, b + 2*q, m.Sub(a, b), a + 3*q, b, m.Neg(b)}
		var refHi, refLo, cc uint64
		refMod := uint64(0)
		for _, x := range vec {
			refLo, cc = bits.Add64(refLo, x, 0)
			refHi += cc
			refMod = m.Add(refMod, m.Reduce(x))
		}
		if hi, lo := SumVec(vec); hi != refHi || lo != refLo {
			t.Fatalf("SumVec = (%d,%d), want (%d,%d) (q=%d)", hi, lo, refHi, refLo, q)
		}
		if got := m.SumModVec(vec); got != refMod {
			t.Fatalf("SumModVec = %d, want %d (q=%d)", got, refMod, q)
		}
		if got := m.Reduce128(refHi%q, refLo); got != refMod {
			t.Fatalf("Reduce128 of raw sum = %d, want %d (q=%d)", got, refMod, q)
		}
		dst := make([]uint64, len(vec))
		if hi, lo := CopySumVec(dst, vec); hi != refHi || lo != refLo {
			t.Fatalf("CopySumVec sum mismatch (q=%d)", q)
		}
		for i := range dst {
			if dst[i] != vec[i] {
				t.Fatalf("CopySumVec copy differs at %d (q=%d)", i, q)
			}
		}
		if hi, lo := m.ReduceFourQSumVec(dst); m.Reduce128(hi%q, lo) != refMod {
			t.Fatalf("ReduceFourQSumVec sum mismatch (q=%d)", q)
		}
		for i := range dst {
			if dst[i] != m.Reduce(vec[i]) || dst[i] >= q {
				t.Fatalf("ReduceFourQSumVec correction differs at %d (q=%d)", i, q)
			}
		}
		if hi, lo := m.MulShoupSumVec(dst, dst, b, bShoup); true {
			wantDot, wantSum := uint64(0), uint64(0)
			for i := range dst {
				if dst[i] >= q {
					t.Fatalf("MulShoupSumVec output[%d] escapes [0,q) (q=%d)", i, q)
				}
				wantSum = m.Add(wantSum, dst[i])
			}
			if m.Reduce128(hi%q, lo) != wantSum {
				t.Fatalf("MulShoupSumVec sum mismatch (q=%d)", q)
			}
			w := make([]uint64, len(dst))
			ws := make([]uint64, len(dst))
			for i := range w {
				w[i] = m.Reduce(b + uint64(i))
				ws[i] = m.ShoupPrecomp(w[i])
				wantDot = m.Add(wantDot, m.Mul(dst[i], w[i]))
			}
			if got := m.DotShoupVec(dst, w, ws); got != wantDot {
				t.Fatalf("DotShoupVec = %d, want %d (q=%d)", got, wantDot, q)
			}
		}
	})
}

package modmath

import "math/bits"

// Lazy 128-bit checksum kernels — the arithmetic substrate of the ABFT
// integrity layer. A residue checksum is the mod-q sum of a row's
// words; to keep the fused cost near one add per element, these kernels
// accumulate the raw sum in a 128-bit (hi, lo) pair with carry chains
// and defer the single modular reduction to the caller (Reduce128).
// Two independent accumulator pairs hide the carry latency in the
// unrolled loops. Precondition everywhere: at most q summands (hi < q),
// which every NTT-sized row satisfies since q ≡ 1 mod 2n implies q > 2n.

// SumVec returns the raw 128-bit sum of a's words. Inputs may be any
// uint64 (redundant residues included): the caller reduces the raw sum
// once, and Σ xᵢ mod q is unchanged by per-element laziness.
func SumVec(a []uint64) (hi, lo uint64) {
	var h0, l0, h1, l1 uint64
	var c uint64
	i := 0
	for ; i+7 < len(a); i += 8 {
		l0, c = bits.Add64(l0, a[i+0], 0)
		h0 += c
		l1, c = bits.Add64(l1, a[i+1], 0)
		h1 += c
		l0, c = bits.Add64(l0, a[i+2], 0)
		h0 += c
		l1, c = bits.Add64(l1, a[i+3], 0)
		h1 += c
		l0, c = bits.Add64(l0, a[i+4], 0)
		h0 += c
		l1, c = bits.Add64(l1, a[i+5], 0)
		h1 += c
		l0, c = bits.Add64(l0, a[i+6], 0)
		h0 += c
		l1, c = bits.Add64(l1, a[i+7], 0)
		h1 += c
	}
	for ; i < len(a); i++ {
		l0, c = bits.Add64(l0, a[i], 0)
		h0 += c
	}
	lo, c = bits.Add64(l0, l1, 0)
	hi = h0 + h1 + c
	return hi, lo
}

// SumModVec returns the mod-q sum of a's words — the residue checksum
// carried alongside a limb row.
func (m Modulus) SumModVec(a []uint64) uint64 {
	return m.reduce128(SumVec(a))
}

// CopySumVec copies a into dst and returns the raw 128-bit sum of the
// copied words — the fused save-input-and-checksum pass of the checked
// in-place transforms (the copy is the recompute scratch).
func CopySumVec(dst, a []uint64) (hi, lo uint64) {
	n := len(dst)
	a = a[:n:n]
	var c uint64
	for i := 0; i < n; i++ {
		x := a[i]
		dst[i] = x
		lo, c = bits.Add64(lo, x, 0)
		hi += c
	}
	return hi, lo
}

// ReduceFourQSumVec corrects 4q-residues in place to canonical [0, q)
// and returns the raw 128-bit sum of the corrected words — the fused
// output-checksum variant of ReduceFourQVec, used so the checked
// forward transform's final correction pass also produces the residue
// checksum for free.
func (m Modulus) ReduceFourQSumVec(a []uint64) (hi, lo uint64) {
	q := m.Q
	twoQ := q << 1
	var c uint64
	for i, x := range a {
		x = condSub(condSub(x, twoQ), q)
		a[i] = x
		lo, c = bits.Add64(lo, x, 0)
		hi += c
	}
	return hi, lo
}

// MulShoupSumVec sets dst[i] = a[i]·w mod q for a fixed w (fully
// reduced, like MulShoupVec) and returns the raw 128-bit sum of the
// outputs — the fused variant of the inverse transform's 1/n scaling
// pass, producing the coefficient-domain residue checksum for free.
func (m Modulus) MulShoupSumVec(dst, a []uint64, w, wShoup uint64) (hi, lo uint64) {
	n := len(dst)
	a = a[:n:n]
	q := m.Q
	var c uint64
	for i := 0; i < n; i++ {
		x := condSub(m.MulShoupLazy(a[i], w, wShoup), q)
		dst[i] = x
		lo, c = bits.Add64(lo, x, 0)
		hi += c
	}
	return hi, lo
}

// DotShoupVec returns Σ a[i]·w[i] mod q for a constant vector w with
// per-entry Shoup companions — the weighted checksum of the
// Jou-Abraham-style NTT verifier. Each product is fully reduced before
// the 128-bit accumulation, so the precondition (at most q summands)
// holds for any canonical weight table.
func (m Modulus) DotShoupVec(a, w, wShoup []uint64) uint64 {
	n := len(a)
	w, wShoup = w[:n:n], wShoup[:n:n]
	q := m.Q
	var hi, lo, c uint64
	for i := 0; i < n; i++ {
		x := condSub(m.MulShoupLazy(a[i], w[i], wShoup[i]), q)
		lo, c = bits.Add64(lo, x, 0)
		hi += c
	}
	return m.reduce128(hi, lo)
}

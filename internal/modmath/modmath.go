// Package modmath provides the modular-arithmetic substrate used by the
// whole CROPHE stack: word-sized prime moduli suitable for negacyclic
// number-theoretic transforms, Barrett and Shoup reduction (the same
// reduction families the CROPHE hardware lanes implement), modular
// exponentiation and inverses, and primitive-root discovery.
//
// All arithmetic is on uint64 residues with moduli below 2^62 so that a
// single addition never overflows and products fit in the 128-bit
// intermediates provided by math/bits.
package modmath

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Keeping two slack
// bits lets lazy add/sub chains stay in uint64 without per-op reduction.
const MaxModulusBits = 62

// Modulus bundles a prime q with the precomputed constants needed for fast
// Barrett reduction. It is immutable after creation and safe for concurrent
// use.
type Modulus struct {
	Q uint64 // the prime modulus
	// Barrett constant: floor(2^128 / q) represented as 128 bits
	// (hi, lo). Used to reduce 128-bit products.
	brHi, brLo uint64
	bitLen     uint
}

// NewModulus validates q and precomputes the Barrett constant.
// q must be an odd prime in (2, 2^62). Primality is the caller's concern
// for speed; use IsPrime to check when constructing parameter sets.
func NewModulus(q uint64) (Modulus, error) {
	if q < 3 || q%2 == 0 {
		return Modulus{}, fmt.Errorf("modmath: modulus %d must be an odd integer ≥ 3", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return Modulus{}, fmt.Errorf("modmath: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	hi, lo := barrettConstant(q)
	return Modulus{Q: q, brHi: hi, brLo: lo, bitLen: uint(bits.Len64(q))}, nil
}

// MustModulus is NewModulus that panics on error; for package-level tables
// and tests with known-good constants.
func MustModulus(q uint64) Modulus {
	m, err := NewModulus(q)
	if err != nil {
		panic(err)
	}
	return m
}

// barrettConstant computes floor(2^128 / q) as a 128-bit value (hi, lo).
func barrettConstant(q uint64) (hi, lo uint64) {
	// Divide 2^128 - 1 by q then adjust: floor((2^128-1)/q) equals
	// floor(2^128/q) unless q divides 2^128, impossible for odd q > 1.
	hi, r := bits.Div64(0, ^uint64(0), q) // hi = floor((2^64-1)*2^64 + ...)? do it in two steps
	// Standard long division of the 128-bit value (2^128 - 1) by q:
	// first digit: floor((2^64-1)/q) with remainder r0.
	// second digit: floor((r0*2^64 + (2^64-1)) / q).
	lo, _ = bits.Div64(r, ^uint64(0), q)
	return hi, lo
}

// BitLen returns the bit length of the modulus.
func (m Modulus) BitLen() uint { return m.bitLen }

// Add returns (a + b) mod q. Inputs must already be < q.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns (a - b) mod q. Inputs must already be < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	d := a - b
	if d > a { // borrow
		d += m.Q
	}
	return d
}

// Neg returns (-a) mod q. Input must be < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Mul returns (a * b) mod q using Barrett reduction on the 128-bit product.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.reduce128(hi, lo)
}

// reduce128 reduces a 128-bit value x = hi·2^64 + lo modulo q via Barrett:
// t = floor(x * floor(2^128/q) / 2^128); r = x - t*q; r -= q while r ≥ q.
func (m Modulus) reduce128(hi, lo uint64) uint64 {
	// q < 2^62 so hi < q < 2^62 whenever x is a product of reduced
	// operands; the generic path below also handles arbitrary hi < q.
	// t = high 128 bits of (x * br) where br ≈ 2^128/q.
	// x*br is a 256-bit product; we only need bits [128, 192).
	// Decompose: x*br = hi*brHi*2^128 + (hi*brLo + lo*brHi)*2^64 + lo*brLo.
	c1h, _ := bits.Mul64(lo, m.brLo) // low product contributes carries only
	c2h, c2l := bits.Mul64(lo, m.brHi)
	c3h, c3l := bits.Mul64(hi, m.brLo)
	c4h, c4l := bits.Mul64(hi, m.brHi)

	// The 2^64 digit c1h + c2l + c3l carries into the 2^128 digit.
	mid, carry1 := bits.Add64(c1h, c2l, 0)
	_, carry2 := bits.Add64(mid, c3l, 0)

	// 2^128 digit = c2h + c3h + c4l + carries → low word of t.
	tLo, carryA := bits.Add64(c2h, c3h, carry1)
	tLo, carryB := bits.Add64(tLo, c4l, carry2)
	// 2^192 digit → high word of t.
	tHi := c4h + carryA + carryB

	// r = x - t*q (mod 2^128); result fits in 64 bits after at most two
	// conditional subtractions.
	pHi, pLo := bits.Mul64(tLo, m.Q)
	pHi += tHi * m.Q
	rLo, borrow := bits.Sub64(lo, pLo, 0)
	_, _ = bits.Sub64(hi, pHi, borrow)
	r := rLo
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Reduce128 reduces a 128-bit value x = hi·2^64 + lo modulo q. The
// caller must keep hi < q (always true for products of reduced operands
// and for the lazy 128-bit checksum accumulators the integrity layer
// folds: a sum of up to 2n word-sized terms has hi ≤ 2n < q, since NTT
// moduli satisfy q ≡ 1 mod 2n).
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	return m.reduce128(hi, lo)
}

// MulAdd returns (a*b + c) mod q.
func (m Modulus) MulAdd(a, b, c uint64) uint64 {
	return m.Add(m.Mul(a, b), c)
}

// Reduce returns x mod q for arbitrary x.
func (m Modulus) Reduce(x uint64) uint64 {
	if x < m.Q {
		return x
	}
	return x % m.Q
}

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	a = m.Reduce(a)
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, a)
		}
		a = m.Mul(a, a)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a modulo the prime q.
// It panics if a ≡ 0 (mod q): zero has no inverse, and hitting this means a
// parameter-set bug rather than a data-dependent condition.
func (m Modulus) Inv(a uint64) uint64 {
	a = m.Reduce(a)
	if a == 0 {
		panic("modmath: inverse of zero")
	}
	// Fermat: a^(q-2) mod q, valid because q is prime.
	return m.Pow(a, m.Q-2)
}

// ShoupPrecomp returns the Shoup precomputed factor w' = floor(w·2^64/q)
// enabling the cheaper MulShoup for a fixed multiplicand w (twiddles,
// constants). Mirrors the constant-multiplier datapath in the PE lanes.
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	hi, _ := bits.Div64(w, 0, m.Q) // floor(w*2^64 / q)
	return hi
}

// MulShoup returns (a*w) mod q given wShoup = ShoupPrecomp(w).
// The result is fully reduced.
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	qHat, _ := bits.Mul64(a, wShoup)
	r := a*w - qHat*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// IsPrime reports whether n is prime, using a deterministic Miller–Rabin
// witness set valid for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	m := MustModulus(n)
	// Deterministic witnesses for n < 2^64 (Sinclair's set).
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		a %= n
		if a == 0 {
			continue
		}
		x := m.Pow(a, d)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = m.Mul(x, x)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GeneratePrimes returns count distinct primes p ≡ 1 (mod 2n), each close
// to 2^bitLen, suitable as negacyclic-NTT RNS bases for ring degree n.
// Primes are returned in decreasing order starting just below 2^bitLen.
func GeneratePrimes(bitLen uint, n uint64, count int) ([]uint64, error) {
	if bitLen > MaxModulusBits || bitLen < 4 {
		return nil, fmt.Errorf("modmath: prime bit length %d out of range [4, %d]", bitLen, MaxModulusBits)
	}
	step := 2 * n
	if step == 0 {
		return nil, fmt.Errorf("modmath: ring degree must be positive")
	}
	// Start at the largest value ≡ 1 (mod 2n) below 2^bitLen.
	top := uint64(1) << bitLen
	cand := top - (top-1)%step // ≡ 1 mod step
	if cand >= top {
		cand -= step
	}
	primes := make([]uint64, 0, count)
	for cand > top/2 {
		if IsPrime(cand) {
			primes = append(primes, cand)
			if len(primes) == count {
				return primes, nil
			}
		}
		if cand < step {
			break
		}
		cand -= step
	}
	return nil, fmt.Errorf("modmath: found only %d of %d primes ≡ 1 mod %d near 2^%d", len(primes), count, step, bitLen)
}

// PrimitiveRoot returns a generator of the multiplicative group (Z/qZ)*.
// q must be prime. factors must be the distinct prime factors of q-1; if
// nil they are computed by trial division (fine for the ≤62-bit moduli
// used here, whose q-1 is smooth by construction).
func PrimitiveRoot(m Modulus) (uint64, error) {
	factors := distinctPrimeFactors(m.Q - 1)
	order := m.Q - 1
	for g := uint64(2); g < m.Q; g++ {
		ok := true
		for _, f := range factors {
			if m.Pow(g, order/f) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("modmath: no primitive root found for %d", m.Q)
}

// RootOfUnity returns a primitive 2n-th root of unity modulo q, which must
// satisfy q ≡ 1 (mod 2n). The returned ψ generates the negacyclic NTT.
func RootOfUnity(m Modulus, n uint64) (uint64, error) {
	order := 2 * n
	if (m.Q-1)%order != 0 {
		return 0, fmt.Errorf("modmath: modulus %d is not ≡ 1 mod %d", m.Q, order)
	}
	g, err := PrimitiveRoot(m)
	if err != nil {
		return 0, err
	}
	psi := m.Pow(g, (m.Q-1)/order)
	// ψ has order dividing 2n; verify it is exactly 2n.
	if m.Pow(psi, n) != m.Q-1 {
		return 0, fmt.Errorf("modmath: derived root has wrong order for modulus %d", m.Q)
	}
	return psi, nil
}

// distinctPrimeFactors factors n by trial division, returning each prime
// once. The RNS moduli here have q-1 = 2n·k with small k, so this is fast.
func distinctPrimeFactors(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// CenteredLift maps a residue x ∈ [0, q) to its centered representative in
// (-q/2, q/2] as a signed integer.
func CenteredLift(x, q uint64) int64 {
	if x > q/2 {
		return int64(x) - int64(q)
	}
	return int64(x)
}

// FromCentered maps a signed value back into [0, q).
func FromCentered(v int64, q uint64) uint64 {
	r := v % int64(q)
	if r < 0 {
		r += int64(q)
	}
	return uint64(r)
}

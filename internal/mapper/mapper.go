// Package mapper places scheduled operator groups onto the PE mesh
// following §IV-B: consecutive operators occupy PE columns left-to-right,
// operators after an on-chip transpose are placed right-to-left from the
// transpose unit, and multiple transposes split the array into horizontal
// bands sized by compute demand (Figure 4). The output placement drives
// the NoC model in the cycle simulator.
package mapper

import (
	"errors"
	"fmt"

	"crophe/internal/graph"
	"crophe/internal/noc"
	"crophe/internal/sched"
)

// ErrNoRows reports that every mesh row is failed — there is nowhere to
// place compute. Degraded-mode callers match it with errors.Is.
var ErrNoRows = errors.New("mapper: no usable PE rows")

// Placement maps each operator of a group to its PEs.
type Placement struct {
	PEsOf map[int][]noc.Coord // node ID → coordinates
	// Bands records the horizontal band split (row ranges), one entry
	// per transpose-separated segment. Band rows are logical: when
	// RowMap is non-nil some physical rows are failed, and RowMap
	// translates a logical row to the physical row serving it.
	Bands []Band
	// RowMap maps every logical mesh row to the physical row serving it:
	// the identity on surviving rows, the nearest surviving row for
	// failed ones (spare-row redundancy). nil means no failed rows.
	RowMap []int
}

// PhysRow translates a logical row to the physical mesh row serving it.
func (p *Placement) PhysRow(logical int) int {
	if p.RowMap == nil || logical < 0 || logical >= len(p.RowMap) {
		return logical
	}
	return p.RowMap[logical]
}

// Band is a horizontal slice of the mesh serving one transpose-separated
// segment of the pipeline.
type Band struct {
	Row0, Rows int
	// LeftToRight is false for segments placed after a transpose.
	LeftToRight bool
}

// Map places a group on a W×H mesh. alloc gives the PE count per node
// (from the scheduler); nodes with zero allocation receive one PE.
func Map(group *sched.GroupSchedule, w, h int) (*Placement, error) {
	return MapAvoiding(group, w, h, nil)
}

// MapAvoiding places a group like Map but keeps work off failed mesh
// rows (degraded-mode mapping). The logical placement — band split,
// direction walk, cell assignment — is computed on the full mesh exactly
// as for a healthy chip, then every cell on a failed row is remapped to
// its nearest surviving row (spare-row redundancy). Keeping the logical
// geometry fault-independent matters for graceful degradation: each
// additional failed row only concentrates load onto the survivors,
// instead of re-rolling the band split and rebalancing link hotspots by
// luck. With every row failed it returns an error matching ErrNoRows.
func MapAvoiding(group *sched.GroupSchedule, w, h int, badRows map[int]bool) (*Placement, error) {
	if len(badRows) == 0 {
		return mapOnMesh(group, w, h)
	}
	anyLive := false
	for y := 0; y < h; y++ {
		if !badRows[y] {
			anyLive = true
			break
		}
	}
	if !anyLive {
		return nil, fmt.Errorf("mapper: all %d mesh rows failed: %w", h, ErrNoRows)
	}
	p, err := mapOnMesh(group, w, h)
	if err != nil {
		return nil, err
	}
	remap := make([]int, h)
	for y := 0; y < h; y++ {
		remap[y] = nearestLiveRow(y, h, badRows)
	}
	for _, pes := range p.PEsOf {
		for i := range pes {
			pes[i].Y = remap[pes[i].Y]
		}
	}
	p.RowMap = remap
	return p, nil
}

// nearestLiveRow returns the surviving row closest to y (ties go up, the
// fixed order that keeps degraded placements deterministic).
func nearestLiveRow(y, h int, bad map[int]bool) int {
	if !bad[y] {
		return y
	}
	for d := 1; d < h; d++ {
		if y-d >= 0 && !bad[y-d] {
			return y - d
		}
		if y+d < h && !bad[y+d] {
			return y + d
		}
	}
	return y
}

func mapOnMesh(group *sched.GroupSchedule, w, h int) (*Placement, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("mapper: invalid mesh %dx%d", w, h)
	}
	nodes := group.Nodes
	if len(nodes) == 0 {
		return nil, fmt.Errorf("mapper: empty group")
	}

	// Split the pipeline at transpose operators into segments; each
	// segment alternates direction (Figure 4).
	var segments [][]*graph.Node
	cur := []*graph.Node{}
	for _, n := range nodes {
		if n.Kind == graph.OpTranspose {
			if len(cur) > 0 {
				segments = append(segments, cur)
			}
			cur = []*graph.Node{}
			continue // the transpose itself runs on the transpose unit
		}
		cur = append(cur, n)
	}
	if len(cur) > 0 {
		segments = append(segments, cur)
	}
	if len(segments) == 0 {
		// Group of only transposes: nothing to place on PEs.
		return &Placement{PEsOf: map[int][]noc.Coord{}}, nil
	}

	// Band heights proportional to segment loads.
	loads := make([]float64, len(segments))
	var total float64
	for i, seg := range segments {
		for _, n := range seg {
			loads[i] += float64(n.ModMuls()) + float64(n.MoveElems())*0.25
		}
		if loads[i] == 0 {
			loads[i] = 1
		}
		total += loads[i]
	}
	p := &Placement{PEsOf: map[int][]noc.Coord{}}
	row := 0
	for i, seg := range segments {
		rows := int(float64(h) * loads[i] / total)
		if rows < 1 {
			rows = 1
		}
		if i == len(segments)-1 || row+rows > h {
			rows = h - row
		}
		if rows < 1 {
			// Out of rows: stack remaining segments on the last band.
			rows = 1
			row = h - 1
		}
		band := Band{Row0: row, Rows: rows, LeftToRight: i%2 == 0}
		p.Bands = append(p.Bands, band)
		placeSegment(p, seg, group.PEAlloc, band, w)
		row += rows
		if row >= h {
			row = h - 1
		}
	}
	return p, nil
}

// placeSegment assigns columns of a band to the segment's operators in
// order, walking left→right or right→left.
func placeSegment(p *Placement, seg []*graph.Node, alloc map[int]int, band Band, w int) {
	// Total PEs available in the band.
	avail := band.Rows * w
	// Requested PEs, clamped into the band.
	want := 0
	req := make([]int, len(seg))
	for i, n := range seg {
		a := alloc[n.ID]
		if a < 1 {
			a = 1
		}
		req[i] = a
		want += a
	}
	if want > avail {
		// Scale down proportionally, keeping ≥1 each.
		scale := float64(avail) / float64(want)
		for i := range req {
			req[i] = int(float64(req[i]) * scale)
			if req[i] < 1 {
				req[i] = 1
			}
		}
	}

	// Walk cells column-major in the band, in the band's direction.
	cells := make([]noc.Coord, 0, avail)
	if band.LeftToRight {
		for x := 0; x < w; x++ {
			for y := band.Row0; y < band.Row0+band.Rows; y++ {
				cells = append(cells, noc.Coord{X: x, Y: y})
			}
		}
	} else {
		for x := w - 1; x >= 0; x-- {
			for y := band.Row0; y < band.Row0+band.Rows; y++ {
				cells = append(cells, noc.Coord{X: x, Y: y})
			}
		}
	}
	idx := 0
	for i, n := range seg {
		pes := make([]noc.Coord, 0, req[i])
		for k := 0; k < req[i]; k++ {
			pes = append(pes, cells[idx%len(cells)])
			idx++
		}
		p.PEsOf[n.ID] = pes
	}
}

// Trace is the execution record the simulator consumes: per-group
// placements plus the data transfers between operators.
type Trace struct {
	Groups []TraceGroup
}

// TraceGroup couples one scheduled group with its placement and edges.
type TraceGroup struct {
	Group     *sched.GroupSchedule
	Placement *Placement
	// Transfers lists intra-group producer→consumer transfers.
	Transfers []Transfer
}

// Transfer is one logical data movement between placed operators.
type Transfer struct {
	FromID, ToID int
	Bytes        float64
	Multicast    bool
}

// BuildTrace maps every group of a segment schedule and extracts its
// transfers.
func BuildTrace(seg *sched.SegmentSchedule, wordBytes float64, w, h int) (*Trace, error) {
	return BuildTraceAvoiding(seg, wordBytes, w, h, nil)
}

// BuildTraceAvoiding is BuildTrace with failed mesh rows excluded from
// every group's placement (see MapAvoiding).
func BuildTraceAvoiding(seg *sched.SegmentSchedule, wordBytes float64, w, h int, badRows map[int]bool) (*Trace, error) {
	t := &Trace{}
	for gi := range seg.Groups {
		g := &seg.Groups[gi]
		pl, err := MapAvoiding(g, w, h, badRows)
		if err != nil {
			return nil, fmt.Errorf("mapper: group %d: %w", gi, err)
		}
		tg := TraceGroup{Group: g, Placement: pl}
		inGroup := map[int]bool{}
		for _, n := range g.Nodes {
			inGroup[n.ID] = true
		}
		for _, n := range g.Nodes {
			for _, e := range n.OutEdges {
				if e.Class != graph.Intermediate || !inGroup[e.To.ID] {
					continue
				}
				tg.Transfers = append(tg.Transfers, Transfer{
					FromID: n.ID, ToID: e.To.ID,
					Bytes: e.Shape.Bytes(wordBytes),
				})
			}
		}
		t.Groups = append(t.Groups, tg)
	}
	return t, nil
}

package mapper

import (
	"errors"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

var testParams = arch.ParamSet{Name: "t", LogN: 12, L: 7, LBoot: 5, DNum: 4, Alpha: 2}

func scheduledSegment(t *testing.T) *sched.SegmentSchedule {
	t.Helper()
	b := workload.NewBuilder(testParams)
	in := b.Input("x", 5)
	out := b.KeySwitch(in, 5, "evk:t", "ks")
	b.Output(out)
	w := &workload.Workload{
		Name: "ks", Params: testParams, DataParallel: 1,
		Segments: []workload.Segment{{Name: "ks", G: b.G, Count: 1}},
	}
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	return &s.Segments[0]
}

func TestMapPlacesEveryNonTransposeOp(t *testing.T) {
	seg := scheduledSegment(t)
	for gi := range seg.Groups {
		g := &seg.Groups[gi]
		pl, err := Map(g, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Kind == graph.OpTranspose {
				continue
			}
			pes := pl.PEsOf[n.ID]
			if len(pes) == 0 {
				t.Fatalf("node %s has no PEs", n.Name)
			}
			for _, c := range pes {
				if c.X < 0 || c.X >= 8 || c.Y < 0 || c.Y >= 8 {
					t.Fatalf("node %s placed off-mesh at %v", n.Name, c)
				}
			}
		}
	}
}

func TestMapValidation(t *testing.T) {
	g := &sched.GroupSchedule{}
	if _, err := Map(g, 8, 8); err == nil {
		t.Error("empty group should fail")
	}
	gr := graph.New()
	n := gr.AddNode(graph.OpEWMul, "m", graph.Tensor{Digits: 1, Limbs: 1, N: 8})
	g2 := &sched.GroupSchedule{Nodes: []*graph.Node{n}, PEAlloc: map[int]int{}}
	if _, err := Map(g2, 0, 8); err == nil {
		t.Error("invalid mesh should fail")
	}
}

func TestTransposeSplitsBands(t *testing.T) {
	gr := graph.New()
	shape := graph.Tensor{Digits: 1, Limbs: 4, N: 4096}
	col := gr.AddNode(graph.OpNTTCol, "col", shape)
	col.SubNTTLen = 64
	tw := gr.AddNode(graph.OpTwiddle, "tw", shape)
	tr := gr.AddNode(graph.OpTranspose, "tr", shape)
	row := gr.AddNode(graph.OpNTTRow, "row", shape)
	row.SubNTTLen = 64
	gr.Connect(col, tw)
	gr.Connect(tw, tr)
	gr.Connect(tr, row)

	g := &sched.GroupSchedule{
		Nodes:   []*graph.Node{col, tw, tr, row},
		PEAlloc: map[int]int{col.ID: 8, tw.ID: 4, tr.ID: 1, row.ID: 8},
	}
	pl, err := Map(g, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Bands) != 2 {
		t.Fatalf("bands %d want 2 (split at transpose)", len(pl.Bands))
	}
	if !pl.Bands[0].LeftToRight || pl.Bands[1].LeftToRight {
		t.Fatal("band directions should alternate (Figure 4)")
	}
	if _, placed := pl.PEsOf[tr.ID]; placed {
		t.Fatal("transpose should run on the transpose unit, not PEs")
	}
	// The post-transpose segment starts from the right edge.
	rowPEs := pl.PEsOf[row.ID]
	if len(rowPEs) == 0 || rowPEs[0].X != 7 {
		t.Fatalf("post-transpose op should start at the right edge, got %v", rowPEs)
	}
}

func TestBuildTraceTransfers(t *testing.T) {
	seg := scheduledSegment(t)
	tr, err := BuildTrace(seg, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Groups) != len(seg.Groups) {
		t.Fatalf("trace groups %d want %d", len(tr.Groups), len(seg.Groups))
	}
	totalTransfers := 0
	for _, tg := range tr.Groups {
		totalTransfers += len(tg.Transfers)
		for _, x := range tg.Transfers {
			if x.Bytes <= 0 {
				t.Fatal("non-positive transfer")
			}
		}
	}
	if totalTransfers == 0 {
		t.Fatal("no transfers extracted from a keyswitch")
	}
}

func TestMapOversubscribedGroupScalesDown(t *testing.T) {
	// More requested PEs than the band holds: allocation must scale.
	gr := graph.New()
	shape := graph.Tensor{Digits: 1, Limbs: 4, N: 4096}
	var nodes []*graph.Node
	alloc := map[int]int{}
	for i := 0; i < 4; i++ {
		n := gr.AddNode(graph.OpEWMul, "m", shape)
		nodes = append(nodes, n)
		alloc[n.ID] = 10
	}
	g := &sched.GroupSchedule{Nodes: nodes, PEAlloc: alloc}
	pl, err := Map(g, 4, 2) // only 8 PEs for 40 requested
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if len(pl.PEsOf[n.ID]) == 0 {
			t.Fatal("scaled-down node lost all PEs")
		}
	}
}

func TestMapAvoidingSkipsFailedRows(t *testing.T) {
	seg := scheduledSegment(t)
	bad := map[int]bool{2: true, 5: true}
	for gi := range seg.Groups {
		g := &seg.Groups[gi]
		pl, err := MapAvoiding(g, 8, 8, bad)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			for _, c := range pl.PEsOf[n.ID] {
				if bad[c.Y] {
					t.Fatalf("node %s placed on failed row %d", n.Name, c.Y)
				}
				if c.X < 0 || c.X >= 8 || c.Y < 0 || c.Y >= 8 {
					t.Fatalf("node %s placed off-mesh at %v", n.Name, c)
				}
			}
		}
		if pl.RowMap == nil {
			t.Fatal("avoiding placement has no row map")
		}
		// Virtual rows translate to surviving physical rows.
		for v := 0; v < len(pl.RowMap); v++ {
			if bad[pl.PhysRow(v)] {
				t.Fatalf("virtual row %d maps to failed row %d", v, pl.PhysRow(v))
			}
		}
	}
}

func TestMapAvoidingAllRowsFailedIsTypedError(t *testing.T) {
	seg := scheduledSegment(t)
	bad := map[int]bool{}
	for y := 0; y < 8; y++ {
		bad[y] = true
	}
	_, err := MapAvoiding(&seg.Groups[0], 8, 8, bad)
	if !errors.Is(err, ErrNoRows) {
		t.Fatalf("want ErrNoRows, got %v", err)
	}
	if _, err := BuildTraceAvoiding(seg, 8, 8, 8, bad); !errors.Is(err, ErrNoRows) {
		t.Fatalf("BuildTraceAvoiding: want ErrNoRows, got %v", err)
	}
}

func TestMapAvoidingNilBadRowsIsIdentity(t *testing.T) {
	seg := scheduledSegment(t)
	g := &seg.Groups[0]
	a, err := Map(g, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapAvoiding(g, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.RowMap != nil || b.RowMap != nil {
		t.Fatal("healthy placements should have no row map")
	}
	for id, pes := range a.PEsOf {
		if len(b.PEsOf[id]) != len(pes) {
			t.Fatalf("node %d placement differs", id)
		}
	}
}

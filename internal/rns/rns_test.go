package rns

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"crophe/internal/modmath"
)

func testBasis(t testing.TB, bitLen uint, n uint64, count int) *Basis {
	t.Helper()
	ps, err := modmath.GeneratePrimes(bitLen, n, count)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(ps)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBasisValidation(t *testing.T) {
	if _, err := NewBasis(nil); err == nil {
		t.Error("empty basis should fail")
	}
	if _, err := NewBasis([]uint64{12289, 12289}); err == nil {
		t.Error("duplicate modulus should fail")
	}
	if _, err := NewBasis([]uint64{12289, 12290}); err == nil {
		t.Error("composite modulus should fail")
	}
}

func TestDecomposeReconstructRoundTrip(t *testing.T) {
	b := testBasis(t, 40, 1<<10, 5)
	q := b.Product()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := new(big.Int).Rand(rng, q)
		res := b.Decompose(x)
		back := b.Reconstruct(res)
		if back.Cmp(x) != 0 {
			t.Fatalf("roundtrip mismatch: %s != %s", back, x)
		}
	}
}

func TestReconstructCentered(t *testing.T) {
	b := testBasis(t, 40, 1<<10, 3)
	q := b.Product()
	// A value just above Q/2 should come back negative.
	x := new(big.Int).Rsh(q, 1)
	x.Add(x, big.NewInt(5))
	res := b.Decompose(x)
	c := b.ReconstructCentered(res)
	if c.Sign() >= 0 {
		t.Fatalf("expected negative centered value, got %s", c)
	}
	want := new(big.Int).Sub(x, q)
	if c.Cmp(want) != 0 {
		t.Fatalf("centered value %s, want %s", c, want)
	}
}

func TestRNSArithmeticHomomorphism(t *testing.T) {
	// (x+y) and (x·y) computed limb-wise must match big-int results mod Q.
	b := testBasis(t, 40, 1<<10, 4)
	q := b.Product()
	rng := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := new(big.Int).Rand(r, q)
		y := new(big.Int).Rand(r, q)
		xr, yr := b.Decompose(x), b.Decompose(y)
		sum := make([]uint64, b.K())
		prod := make([]uint64, b.K())
		for i, m := range b.Mods {
			sum[i] = m.Add(xr[i], yr[i])
			prod[i] = m.Mul(xr[i], yr[i])
		}
		wantSum := new(big.Int).Add(x, y)
		wantSum.Mod(wantSum, q)
		wantProd := new(big.Int).Mul(x, y)
		wantProd.Mod(wantProd, q)
		return b.Reconstruct(sum).Cmp(wantSum) == 0 &&
			b.Reconstruct(prod).Cmp(wantProd) == 0
	}
	_ = rng
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConvertExactForSmallValues(t *testing.T) {
	// For x < C the approximate conversion error e·C pushes the value out
	// of [0, C) only when the rounding term overflows; for x well below C
	// the result must be either exact or off by a known multiple of C.
	src := testBasis(t, 40, 1<<10, 3)
	dst := testBasis(t, 41, 1<<10, 4)
	conv := NewConv(src, dst)
	cProd := src.Product()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		x := new(big.Int).Rand(rng, cProd)
		in := src.Decompose(x)
		out := make([]uint64, dst.K())
		conv.Convert(out, in)
		got := dst.Reconstruct(out)
		// got ≡ x + e·C (mod D) with 0 ≤ e < K.
		diff := new(big.Int).Sub(got, x)
		diff.Mod(diff, dst.Product())
		e := new(big.Int)
		rem := new(big.Int)
		e.DivMod(diff, cProd, rem)
		if rem.Sign() != 0 {
			t.Fatalf("conversion error is not a multiple of C: x=%s got=%s", x, got)
		}
		if e.Cmp(big.NewInt(int64(src.K()))) >= 0 {
			t.Fatalf("conversion overshoot e=%s ≥ K=%d", e, src.K())
		}
	}
}

func TestConvertZeroAndBoundary(t *testing.T) {
	src := testBasis(t, 40, 1<<10, 2)
	dst := testBasis(t, 41, 1<<10, 3)
	conv := NewConv(src, dst)
	out := make([]uint64, dst.K())
	conv.Convert(out, make([]uint64, src.K()))
	for j, v := range out {
		if v != 0 {
			t.Fatalf("Convert(0) limb %d = %d, want 0", j, v)
		}
	}
	// x = 1 converts to 1 + e·C for some 0 ≤ e < K (approximate BConv).
	one := src.Decompose(big.NewInt(1))
	conv.Convert(out, one)
	got := dst.Reconstruct(out)
	diff := new(big.Int).Sub(got, big.NewInt(1))
	if new(big.Int).Mod(diff, src.Product()).Sign() != 0 {
		t.Fatalf("Convert(1) = %s is not 1 + e·C", got)
	}
}

func TestConvertColumnsMatchesScalar(t *testing.T) {
	src := testBasis(t, 40, 1<<10, 3)
	dst := testBasis(t, 41, 1<<10, 5)
	conv := NewConv(src, dst)
	n := 64
	rng := rand.New(rand.NewSource(4))
	in := make([][]uint64, src.K())
	for i := range in {
		in[i] = make([]uint64, n)
		for c := range in[i] {
			in[i][c] = rng.Uint64() % src.Mods[i].Q
		}
	}
	out := make([][]uint64, dst.K())
	for j := range out {
		out[j] = make([]uint64, n)
	}
	conv.ConvertColumns(out, in)

	col := make([]uint64, src.K())
	want := make([]uint64, dst.K())
	for c := 0; c < n; c++ {
		for i := range col {
			col[i] = in[i][c]
		}
		conv.Convert(want, col)
		for j := range want {
			if out[j][c] != want[j] {
				t.Fatalf("column %d limb %d: %d != %d", c, j, out[j][c], want[j])
			}
		}
	}
}

func TestDigitBounds(t *testing.T) {
	cases := []struct {
		level, alpha int
		want         [][2]int
	}{
		{0, 1, [][2]int{{0, 1}}},
		{3, 2, [][2]int{{0, 2}, {2, 4}}},
		{4, 2, [][2]int{{0, 2}, {2, 4}, {4, 5}}},
		{5, 6, [][2]int{{0, 6}}},
		{11, 4, [][2]int{{0, 4}, {4, 8}, {8, 12}}},
	}
	for _, c := range cases {
		got := DigitBounds(c.level, c.alpha)
		if len(got) != len(c.want) {
			t.Fatalf("level=%d α=%d: %v want %v", c.level, c.alpha, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("level=%d α=%d digit %d: %v want %v", c.level, c.alpha, i, got[i], c.want[i])
			}
		}
	}
}

func TestDigitBoundsPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha=0")
		}
	}()
	DigitBounds(3, 0)
}

func TestSubBasis(t *testing.T) {
	b := testBasis(t, 40, 1<<10, 6)
	s := b.Sub(2, 5)
	if s.K() != 3 {
		t.Fatalf("sub-basis size %d", s.K())
	}
	for i := 0; i < 3; i++ {
		if s.Mods[i].Q != b.Mods[i+2].Q {
			t.Fatal("sub-basis moduli mismatch")
		}
	}
}

package rns

import (
	"errors"
	"math/rand"
	"testing"

	"crophe/internal/integrity"
	"crophe/internal/parallel"
)

func convFixture(t *testing.T, n int) (*Conv, [][]uint64, [][]uint64) {
	t.Helper()
	src := testBasis(t, 40, 1<<10, 3)
	dst := testBasis(t, 41, 1<<10, 5)
	conv := NewConv(src, dst)
	rng := rand.New(rand.NewSource(int64(n)))
	in := make([][]uint64, src.K())
	for i := range in {
		in[i] = make([]uint64, n)
		for c := range in[i] {
			in[i][c] = rng.Uint64() % src.Mods[i].Q
		}
	}
	out := make([][]uint64, dst.K())
	for j := range out {
		out[j] = make([]uint64, n)
	}
	return conv, in, out
}

func TestConvertColumnsCheckedMatchesPlain(t *testing.T) {
	// The checked conversion with no injector must never fire and must be
	// bit-identical to the unchecked kernel, across worker-pool sizes and
	// across block-boundary column counts.
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, n := range []int{64, convBlock, convBlock + 17} {
			conv, in, out := convFixture(t, n)
			want := make([][]uint64, len(out))
			for j := range want {
				want[j] = make([]uint64, n)
			}
			conv.ConvertColumns(want, in)

			ck := integrity.NewChecker(1)
			if err := conv.ConvertColumnsChecked(out, in, ck); err != nil {
				t.Fatalf("workers=%d n=%d: false positive: %v", workers, n, err)
			}
			for j := range out {
				for c := range out[j] {
					if out[j][c] != want[j][c] {
						t.Fatalf("workers=%d n=%d: limb %d col %d differs", workers, n, j, c)
					}
				}
			}
			s := ck.Stats()
			if s.Detected != 0 || s.Checks != 1 {
				t.Fatalf("workers=%d n=%d: clean stats %+v", workers, n, s)
			}
		}
	}
}

func TestConvertColumnsCheckedDetectsBitFlips(t *testing.T) {
	// Detection bound on the BConv check: every single-bit flip of every
	// output word must break its limb's column-sum identity.
	conv, in, out := convFixture(t, 64)
	ck := integrity.NewChecker(1)
	if err := conv.ConvertColumnsChecked(out, in, ck); err != nil {
		t.Fatal(err)
	}
	k := conv.Src.K()
	sHi := make([]uint64, k)
	sLo := make([]uint64, k)
	scratch := make([][]uint64, len(out))
	for j := range scratch {
		scratch[j] = make([]uint64, len(out[j]))
	}
	conv.convertColumnsSum(scratch, in, sHi, sLo)
	for j, md := range conv.Dst.Mods {
		var want uint64
		for i := 0; i < k; i++ {
			want = md.Add(want, md.Mul(md.Reduce128(sHi[i]%md.Q, sLo[i]), conv.cHatModD[j][i]))
		}
		if got := md.SumModVec(out[j]); got != want {
			t.Fatalf("clean limb %d fails its own check: %d != %d", j, got, want)
		}
		for c := range out[j] {
			for b := uint(0); b < 64; b++ {
				out[j][c] ^= 1 << b
				if md.SumModVec(out[j]) == want {
					t.Fatalf("limb %d: flip of bit %d in col %d not detected", j, b, c)
				}
				out[j][c] ^= 1 << b
			}
		}
	}
}

func TestConvertColumnsCheckedRecoversTransient(t *testing.T) {
	conv, in, out := convFixture(t, 64)
	want := make([][]uint64, len(out))
	for j := range want {
		want[j] = make([]uint64, len(out[j]))
	}
	conv.ConvertColumns(want, in)

	inj := integrity.NewInjector(23, 1)
	inj.Arm(1) // corrupt only the first attempt's first dst row pass
	ck := integrity.NewChecker(23, integrity.WithInjector(inj))
	if err := conv.ConvertColumnsChecked(out, in, ck); err != nil {
		t.Fatalf("transient flip escalated: %v", err)
	}
	for j := range out {
		for c := range out[j] {
			if out[j][c] != want[j][c] {
				t.Fatalf("recovered limb %d col %d differs", j, c)
			}
		}
	}
	if s := ck.Stats(); s.Detected != 1 || s.Recomputed != 1 || s.Escalated != 0 {
		t.Fatalf("transient recovery stats: %+v", s)
	}
}

func TestConvertColumnsCheckedEscalatesPersistent(t *testing.T) {
	conv, in, out := convFixture(t, 64)
	inj := integrity.NewInjector(29, 0.05)
	inj.Persist(true)
	ck := integrity.NewChecker(29, integrity.WithInjector(inj))
	err := conv.ConvertColumnsChecked(out, in, ck)
	if err == nil {
		t.Fatal("persistent corruption did not escalate")
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("escalation is not *integrity.Error: %v", err)
	}
	if ie.Seed != 29 || ie.Kernel != "rns.ConvertColumns" {
		t.Fatalf("escalation payload: %+v", ie)
	}
	if s := ck.Stats(); s.Escalated != 1 || s.Detected != uint64(integrity.DefaultMaxRecompute+1) {
		t.Fatalf("persistent stats: %+v", s)
	}
}

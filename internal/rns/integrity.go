package rns

import (
	"math/bits"
	"sync"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// ABFT verification of the BConv matrix multiply. ConvertColumns computes
//
//	dst[j][col] = Σ_i v_i[col] · M[j][i]  (mod d_j),   M[j][i] = Ĉ_i mod d_j,
//
// with v_i = x_i·(Ĉ_i)^{-1} mod c_i staged canonically. Column-summing
// both sides gives the linear check the verifier runs per target limb:
//
//	Σ_col dst[j][col] ≡ Σ_i M[j][i] · (S_i mod d_j)  (mod d_j),
//
// where S_i = Σ_col v_i[col] is the integer (128-bit) sum of staging row
// i, accumulated for free while the rows are produced. The right side is
// O(|D|·|C|) scalar work — negligible next to the O(|D|·|C|·n) multiply —
// and any single corrupted word in a dst row shifts that row's column
// sum by a nonzero delta mod the odd prime d_j, so single-bit flips are
// detected with certainty. (Like any output-side ABFT, corruption of the
// staging rows between summation and use is outside the check's scope;
// the recovery protocol's recompute replays the whole staging pass from
// src, which is untouched.)

// ConvertColumnsChecked is ConvertColumns under the detect → bounded
// recompute → escalate protocol. On persistent mismatch it returns the
// checker's typed *integrity.Error (kernel "rns.ConvertColumns") and
// leaves dst unspecified; src is never modified, so recompute is a pure
// replay.
func (c *Conv) ConvertColumnsChecked(dst, src [][]uint64, ck *integrity.Checker) error {
	if len(src) != c.Src.K() || len(dst) != c.Dst.K() {
		panic("rns: ConvertColumnsChecked limb mismatch")
	}
	k := c.Src.K()
	sHi := make([]uint64, k)
	sLo := make([]uint64, k)
	for attempt := 1; ; attempt++ {
		for i := range sHi {
			sHi[i], sLo[i] = 0, 0
		}
		c.convertColumnsSum(dst, src, sHi, sLo)
		for j := range dst {
			ck.Corrupt(dst[j])
		}
		ck.Checked()
		ok := true
		for j, md := range c.Dst.Mods {
			row := c.cHatModD[j]
			var want uint64
			for i := 0; i < k; i++ {
				si := md.Reduce128(sHi[i]%md.Q, sLo[i])
				want = md.Add(want, md.Mul(si, row[i]))
			}
			if md.SumModVec(dst[j]) != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		ck.Detected()
		if attempt > ck.MaxRecompute() {
			return ck.Escalate("rns.ConvertColumns", attempt)
		}
		ck.Recomputed()
	}
}

// convertColumnsSum is ConvertColumns with the staging-row sums fused
// in: it writes the converted limb matrix into dst exactly like the
// unchecked kernel and accumulates S_i = Σ_col v_i[col] as raw 128-bit
// (sHi[i], sLo[i]) pairs across the worker chunks. Kept as a duplicate
// of ConvertColumns so the unchecked hot path cannot regress.
func (c *Conv) convertColumnsSum(dst, src [][]uint64, sHi, sLo []uint64) {
	n := len(src[0])
	k := c.Src.K()
	var mu sync.Mutex
	parallel.ForChunk(n, func(lo, hi int) {
		vp := c.getScratch()
		v := *vp
		locHi := make([]uint64, k)
		locLo := make([]uint64, k)
		for b := lo; b < hi; b += convBlock {
			be := b + convBlock
			if be > hi {
				be = hi
			}
			w := be - b
			for i, m := range c.Src.Mods {
				m.MulShoupVec(v[i*convBlock:i*convBlock+w], src[i][b:be], c.cHatInv[i], c.cHatInvShoup[i])
				h, l := modmath.SumVec(v[i*convBlock : i*convBlock+w])
				var cy uint64
				locLo[i], cy = bits.Add64(locLo[i], l, 0)
				locHi[i] += h + cy
			}
			for j, md := range c.Dst.Mods {
				row := c.cHatModD[j]
				rowShoup := c.cHatModDShoup[j]
				d := dst[j][b:be]
				for x := range d {
					d[x] = 0
				}
				for i := range c.Src.Mods {
					md.MulShoupAccLazyVec(d, v[i*convBlock:i*convBlock+w], row[i], rowShoup[i])
				}
				md.CorrectLazyVec(d)
			}
		}
		c.scratchPool.Put(vp)
		mu.Lock()
		for i := 0; i < k; i++ {
			var cy uint64
			sLo[i], cy = bits.Add64(sLo[i], locLo[i], 0)
			sHi[i] += locHi[i] + cy
		}
		mu.Unlock()
	})
}

// Package rns implements the Residue Number System layer of RNS-CKKS:
// bases of word-sized primes standing in for the wide ciphertext modulus
// Q = q0·q1·…·qℓ, digit decomposition into dnum digits of α limbs each,
// exact CRT reconstruction, and the fast (approximate) basis conversion —
// the BConv operator of the paper — used by ModUp and ModDown in
// key-switching.
package rns

import (
	"fmt"
	"math/big"
	"sync"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// Basis is an ordered set of pairwise-distinct prime moduli.
type Basis struct {
	Mods []modmath.Modulus
}

// NewBasis wraps primes into a Basis, validating distinctness and primality.
func NewBasis(primes []uint64) (*Basis, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	seen := make(map[uint64]bool, len(primes))
	b := &Basis{Mods: make([]modmath.Modulus, len(primes))}
	for i, p := range primes {
		if seen[p] {
			return nil, fmt.Errorf("rns: duplicate modulus %d", p)
		}
		seen[p] = true
		if !modmath.IsPrime(p) {
			return nil, fmt.Errorf("rns: modulus %d is not prime", p)
		}
		m, err := modmath.NewModulus(p)
		if err != nil {
			return nil, err
		}
		b.Mods[i] = m
	}
	return b, nil
}

// K returns the number of limbs in the basis.
func (b *Basis) K() int { return len(b.Mods) }

// Product returns Q = Π q_i as a big integer.
func (b *Basis) Product() *big.Int {
	q := big.NewInt(1)
	for _, m := range b.Mods {
		q.Mul(q, new(big.Int).SetUint64(m.Q))
	}
	return q
}

// Sub returns the sub-basis covering limb indices [lo, hi).
func (b *Basis) Sub(lo, hi int) *Basis {
	return &Basis{Mods: b.Mods[lo:hi]}
}

// Decompose maps a non-negative big integer x (reduced mod Q) to its RNS
// residues.
func (b *Basis) Decompose(x *big.Int) []uint64 {
	res := make([]uint64, b.K())
	tmp := new(big.Int)
	for i, m := range b.Mods {
		tmp.Mod(x, new(big.Int).SetUint64(m.Q))
		res[i] = tmp.Uint64()
	}
	return res
}

// Reconstruct performs exact CRT reconstruction of residues into the
// canonical representative in [0, Q).
func (b *Basis) Reconstruct(residues []uint64) *big.Int {
	if len(residues) != b.K() {
		panic("rns: residue count mismatch")
	}
	q := b.Product()
	acc := new(big.Int)
	tmp := new(big.Int)
	for i, m := range b.Mods {
		qi := new(big.Int).SetUint64(m.Q)
		qHat := new(big.Int).Div(q, qi) // Q / q_i
		// (Q/q_i)^{-1} mod q_i
		qHatModQi := new(big.Int).Mod(qHat, qi).Uint64()
		inv := m.Inv(qHatModQi)
		// term = x_i · inv mod q_i, then · Q/q_i
		xi := m.Mul(residues[i], inv)
		tmp.SetUint64(xi)
		tmp.Mul(tmp, qHat)
		acc.Add(acc, tmp)
	}
	return acc.Mod(acc, q)
}

// ReconstructCentered reconstructs into the centered interval (-Q/2, Q/2].
func (b *Basis) ReconstructCentered(residues []uint64) *big.Int {
	x := b.Reconstruct(residues)
	q := b.Product()
	half := new(big.Int).Rsh(q, 1)
	if x.Cmp(half) > 0 {
		x.Sub(x, q)
	}
	return x
}

// Conv holds precomputations for the fast basis conversion from a source
// basis C = {c_i} to a target basis D = {d_j}:
//
//	y_j = Σ_i [ x_i · (Ĉ_i)^{-1} mod c_i ] · Ĉ_i  (mod d_j),
//
// where Ĉ_i = C/c_i. The result equals x + e·C for some small integer
// e ∈ [0, |C|) — the well-known approximate conversion whose error CKKS
// absorbs into the noise budget. This is exactly the BConv matrix multiply
// of the paper: an |D|×|C| constant matrix applied to each column of the
// limb matrix.
type Conv struct {
	Src, Dst *Basis
	// cHatInv[i] = (C/c_i)^{-1} mod c_i, with Shoup companion.
	cHatInv, cHatInvShoup []uint64
	// cHatModD[j][i] = (C/c_i) mod d_j — the BConv constant matrix, with
	// per-entry Shoup companions (w.r.t. d_j) for the vectorized
	// accumulation.
	cHatModD      [][]uint64
	cHatModDShoup [][]uint64

	// scratchPool holds the |C|·convBlock staging buffers for the
	// v_i = x_i·(Ĉ_i)^{-1} rows of a column block.
	scratchPool sync.Pool // *[]uint64
}

// convBlock is the column-block width of the vectorized ConvertColumns:
// small enough that the |C| staging rows of a block stay cache-resident,
// wide enough to amortise the per-row kernel calls.
const convBlock = 256

// NewConv precomputes the conversion tables.
func NewConv(src, dst *Basis) *Conv {
	c := &Conv{Src: src, Dst: dst}
	prod := src.Product()
	k := src.K()
	c.cHatInv = make([]uint64, k)
	c.cHatInvShoup = make([]uint64, k)
	cHat := make([]*big.Int, k)
	for i, m := range src.Mods {
		qi := new(big.Int).SetUint64(m.Q)
		cHat[i] = new(big.Int).Div(prod, qi)
		red := new(big.Int).Mod(cHat[i], qi).Uint64()
		c.cHatInv[i] = m.Inv(red)
		c.cHatInvShoup[i] = m.ShoupPrecomp(c.cHatInv[i])
	}
	c.cHatModD = make([][]uint64, dst.K())
	c.cHatModDShoup = make([][]uint64, dst.K())
	for j, md := range dst.Mods {
		row := make([]uint64, k)
		dj := new(big.Int).SetUint64(md.Q)
		for i := range src.Mods {
			row[i] = new(big.Int).Mod(cHat[i], dj).Uint64()
		}
		c.cHatModD[j] = row
		rowShoup := make([]uint64, k)
		md.ShoupPrecompute(rowShoup, row)
		c.cHatModDShoup[j] = rowShoup
	}
	return c
}

func (c *Conv) getScratch() *[]uint64 {
	if v, ok := c.scratchPool.Get().(*[]uint64); ok {
		return v
	}
	v := make([]uint64, c.Src.K()*convBlock)
	return &v
}

// Convert maps one RNS value (len = |C| residues) into the target basis
// (len = |D| residues). The output may differ from the exact value by a
// multiple e·C with 0 ≤ e < |C|.
func (c *Conv) Convert(dst, src []uint64) {
	if len(src) != c.Src.K() || len(dst) != c.Dst.K() {
		panic("rns: Convert length mismatch")
	}
	k := c.Src.K()
	// v_i = x_i · (Ĉ_i)^{-1} mod c_i
	v := make([]uint64, k)
	for i, m := range c.Src.Mods {
		v[i] = m.MulShoup(src[i], c.cHatInv[i], c.cHatInvShoup[i])
	}
	for j, md := range c.Dst.Mods {
		row := c.cHatModD[j]
		var acc uint64
		for i := 0; i < k; i++ {
			acc = md.Add(acc, md.Mul(md.Reduce(v[i]), row[i]))
		}
		dst[j] = acc
	}
}

// ConvertColumns applies the conversion to every column of a limb matrix:
// src is |C| rows of n coefficients, dst is |D| rows of n coefficients.
// This is the polynomial-level BConv. Columns are independent, so they are
// partitioned across the worker pool; each chunk walks convBlock-wide
// column blocks, staging the fully-reduced v_i = x_i·(Ĉ_i)^{-1} rows in
// pooled scratch (v MUST stay canonical — a redundant representative
// would change the approximation multiple e) and accumulating each dst
// row as lazy 2q-residues, corrected once per block. Bit-identical to
// the per-column scalar loop.
func (c *Conv) ConvertColumns(dst, src [][]uint64) {
	if len(src) != c.Src.K() || len(dst) != c.Dst.K() {
		panic("rns: ConvertColumns limb mismatch")
	}
	n := len(src[0])
	parallel.ForChunk(n, func(lo, hi int) {
		vp := c.getScratch()
		v := *vp
		for b := lo; b < hi; b += convBlock {
			be := b + convBlock
			if be > hi {
				be = hi
			}
			w := be - b
			for i, m := range c.Src.Mods {
				m.MulShoupVec(v[i*convBlock:i*convBlock+w], src[i][b:be], c.cHatInv[i], c.cHatInvShoup[i])
			}
			for j, md := range c.Dst.Mods {
				row := c.cHatModD[j]
				rowShoup := c.cHatModDShoup[j]
				d := dst[j][b:be]
				for x := range d {
					d[x] = 0
				}
				for i := range c.Src.Mods {
					md.MulShoupAccLazyVec(d, v[i*convBlock:i*convBlock+w], row[i], rowShoup[i])
				}
				md.CorrectLazyVec(d)
			}
		}
		c.scratchPool.Put(vp)
	})
}

// DigitBounds returns the limb ranges of the β = ceil((level+1)/α) digits
// used by key-switching digit decomposition: digit d covers limbs
// [d·α, min((d+1)·α, level+1)).
func DigitBounds(level, alpha int) [][2]int {
	if alpha <= 0 {
		panic("rns: alpha must be positive")
	}
	limbs := level + 1
	beta := (limbs + alpha - 1) / alpha
	out := make([][2]int, beta)
	for d := 0; d < beta; d++ {
		lo := d * alpha
		hi := lo + alpha
		if hi > limbs {
			hi = limbs
		}
		out[d] = [2]int{lo, hi}
	}
	return out
}

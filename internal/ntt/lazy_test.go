package ntt

import (
	"math/rand"
	"testing"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// smallTables builds tables over tiny NTT-friendly primes so exhaustive
// sweeps stay cheap: q ≡ 1 (mod 2n) for each listed degree.
func smallTables(t *testing.T) []*Table {
	t.Helper()
	cases := []struct {
		q uint64
		n int
	}{
		{97, 8}, {97, 16}, {193, 32}, {257, 64},
	}
	out := make([]*Table, 0, len(cases))
	for _, c := range cases {
		tbl, err := NewTable(modmath.MustModulus(c.q), c.n)
		if err != nil {
			t.Fatalf("q=%d n=%d: %v", c.q, c.n, err)
		}
		out = append(out, tbl)
	}
	return out
}

// TestLazyMatchesStrictExhaustive sweeps EVERY scaled basis polynomial
// c·e_i (all i < n, all c < q) over small NTT-friendly primes and checks
// that the lazy kernels are bit-identical to the strict reference in
// both directions. The basis polynomials hit every twiddle path through
// the transform, and with c exhausting the field, every input magnitude
// the correction logic must handle.
func TestLazyMatchesStrictExhaustive(t *testing.T) {
	for _, tbl := range smallTables(t) {
		q, n := tbl.M.Q, tbl.N
		lazy := make([]uint64, n)
		strict := make([]uint64, n)
		for i := 0; i < n; i++ {
			for c := uint64(0); c < q; c++ {
				for j := range lazy {
					lazy[j], strict[j] = 0, 0
				}
				lazy[i], strict[i] = c, c
				tbl.Forward(lazy)
				tbl.forwardStrict(strict)
				for j := range lazy {
					if lazy[j] != strict[j] {
						t.Fatalf("q=%d n=%d forward(c=%d·e_%d) differs at %d: lazy %d strict %d",
							q, n, c, i, j, lazy[j], strict[j])
					}
				}
				tbl.Inverse(lazy)
				tbl.inverseStrict(strict)
				for j := range lazy {
					if lazy[j] != strict[j] {
						t.Fatalf("q=%d n=%d inverse(c=%d·e_%d) differs at %d: lazy %d strict %d",
							q, n, c, i, j, lazy[j], strict[j])
					}
				}
			}
		}
	}
}

// TestLazyMatchesNaiveConvolution closes the loop against the O(N²)
// schoolbook reference: MulPoly (which now runs entirely on the lazy
// kernels) must agree with NegacyclicConvolveNaive on small primes for
// every basis product e_i ⊛ e_j plus random dense polynomials.
func TestLazyMatchesNaiveConvolution(t *testing.T) {
	for _, tbl := range smallTables(t) {
		m, n := tbl.M, tbl.N
		if n > 16 {
			continue // basis-pair sweep is O(n²) transforms; keep it tight
		}
		a := make([]uint64, n)
		b := make([]uint64, n)
		got := make([]uint64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := range a {
					a[k], b[k] = 0, 0
				}
				a[i], b[j] = m.Q-1, 3%m.Q
				tbl.MulPoly(got, a, b)
				want := NegacyclicConvolveNaive(m, a, b)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("q=%d n=%d e_%d⊛e_%d mismatch at %d: got %d want %d",
							m.Q, n, i, j, k, got[k], want[k])
					}
				}
			}
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 25; trial++ {
			for k := range a {
				a[k], b[k] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
			}
			tbl.MulPoly(got, a, b)
			want := NegacyclicConvolveNaive(m, a, b)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("q=%d n=%d random conv mismatch at %d", m.Q, n, k)
				}
			}
		}
	}
}

// TestCyclicLazyMatchesStrict drives the packed-stage bit-reversed lazy
// DIT directly against the strict natural-order cyclic kernel kept as
// reference, in both directions.
func TestCyclicLazyMatchesStrict(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		m := modmath.MustModulus(ps[0])
		psi, err := modmath.RootOfUnity(m, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		omega := m.Mul(psi, psi) // ψ has order 2n → ω = ψ² is a primitive n-th root
		ct := newCyclicTable(m, n, omega)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 20; trial++ {
			a := randomPoly(rng, m.Q, n)
			strict := append([]uint64(nil), a...)
			ct.transform(strict, ct.wPow, false)

			lazyIn := make([]uint64, n)
			for i := range a {
				lazyIn[ct.brv[i]] = a[i]
			}
			ct.forwardLazyBR(lazyIn)
			m.ReduceFourQVec(lazyIn)
			for i := range strict {
				if lazyIn[i] != strict[i] {
					t.Fatalf("n=%d forward cyclic lazy/strict mismatch at %d", n, i)
				}
			}

			strictInv := append([]uint64(nil), a...)
			ct.transform(strictInv, ct.wiPow, true)
			for i := range a {
				lazyIn[ct.brv[i]] = a[i]
			}
			ct.inverseLazyBR(lazyIn)
			m.CorrectLazyVec(lazyIn)
			for i := range strictInv {
				if lazyIn[i] != strictInv[i] {
					t.Fatalf("n=%d inverse cyclic lazy/strict mismatch at %d", n, i)
				}
			}
		}
	}
}

// batchFixture builds limb tables over distinct primes plus matching
// random rows, the shape poly hands to the batch API.
func batchFixture(tb testing.TB, n, limbs int) ([]*Table, [][]uint64) {
	tb.Helper()
	ps, err := modmath.GeneratePrimes(45, uint64(n), limbs)
	if err != nil {
		tb.Fatal(err)
	}
	backing := make([]uint64, n*limbs) // contiguous limb-major, as in poly
	tables := make([]*Table, limbs)
	rows := make([][]uint64, limbs)
	rng := rand.New(rand.NewSource(int64(n + limbs)))
	for k := range tables {
		tbl, err := NewTable(modmath.MustModulus(ps[k]), n)
		if err != nil {
			tb.Fatal(err)
		}
		tables[k] = tbl
		rows[k] = backing[k*n : (k+1)*n]
		for i := range rows[k] {
			rows[k][i] = rng.Uint64() % tbl.M.Q
		}
	}
	return tables, rows
}

// TestBatchMatchesPerLimb pins the bit-exactness of the batch dispatch
// against limb-at-a-time transforms, across worker pool sizes.
func TestBatchMatchesPerLimb(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, limbs := range []int{1, 3, 8} {
			tables, rows := batchFixture(t, 256, limbs)
			want := make([][]uint64, limbs)
			for k := range rows {
				want[k] = append([]uint64(nil), rows[k]...)
				tables[k].Forward(want[k])
			}
			BatchForward(tables, rows)
			for k := range rows {
				for i := range rows[k] {
					if rows[k][i] != want[k][i] {
						t.Fatalf("workers=%d limbs=%d forward limb %d differs at %d", workers, limbs, k, i)
					}
				}
			}
			for k := range rows {
				tables[k].Inverse(want[k])
			}
			BatchInverse(tables, rows)
			for k := range rows {
				for i := range rows[k] {
					if rows[k][i] != want[k][i] {
						t.Fatalf("workers=%d limbs=%d inverse limb %d differs at %d", workers, limbs, k, i)
					}
				}
			}
		}
	}
}

func TestBatchPanicsOnLimbMismatch(t *testing.T) {
	tables, rows := batchFixture(t, 64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BatchForward(tables, rows[:1])
}

// TestFourStepAllocFree asserts the steady state of the pooled scratch:
// with a single worker (the closure-free serial path) neither direction
// allocates.
func TestFourStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is deliberately lossy under the race detector")
	}
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	n := 4096
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFourStep(tbl, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	a := randomPoly(rng, tbl.M.Q, n)
	dst := make([]uint64, n)
	fs.Forward(dst, a) // warm the pools
	fs.Inverse(dst, a)

	if avg := testing.AllocsPerRun(50, func() { fs.Forward(dst, a) }); avg != 0 {
		t.Errorf("FourStep.Forward allocates %.1f times per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { fs.Inverse(dst, a) }); avg != 0 {
		t.Errorf("FourStep.Inverse allocates %.1f times per op, want 0", avg)
	}
}

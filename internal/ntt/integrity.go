package ntt

import (
	"sync"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// ABFT integrity layer: algorithm-based checksums for the negacyclic
// transforms, with the detect → bounded-recompute → escalate policy
// supplied by internal/integrity.
//
// The check math. The forward transform evaluates a(X) at the N odd
// powers p_k = ψ^{2k+1}. Because Σ_k p_k^j vanishes for every j except
// j ≡ 0 (mod N), the plain output sum collapses to Σ_k y_k = N·a_0 —
// a one-multiply identity, but blind to most input positions. The
// weighted (Jou–Abraham-style) checksum fixes that: with
//
//	w_k = (2/N) · p_k / (p_k − 1)
//
// the geometric telescope Σ_t p_k^t = −2/(p_k − 1) (using p_k^N = −1)
// gives Σ_k w_k·p_k^j = 1 for EVERY j in [0, N), hence
//
//	Σ_k w_k·y_k ≡ Σ_j a_j  (mod q).
//
// Every weight is non-zero and every p_k ≠ 1 (2k+1 is odd, ψ has order
// 2N), so the weights exist and any single corrupted word — input,
// intermediate, or output — shifts the two sides apart. A single bit
// flip changes a word by ±2^b, never ≡ 0 mod an odd q, so single-event
// upsets are detected with certainty, not probabilistically.
//
// The same identity checks both directions: the coefficient-domain
// residue checksum of a row is its plain mod-q sum, the NTT-domain
// checksum is the weighted sum, and a correct transform maps one to the
// other exactly. The four-step path additionally exposes the cheap
// N·a_0 identity fused into its correction sweep, which is how the
// opt-in WithIntegrity mode stays under the ≤3% bench-gated overhead.

// checkWeights is the lazily built weight table: wStd in standard
// (natural) evaluation order for the four-step transform, wBR in the
// radix-2 kernel's bit-reversed output order (wBR[i] = wStd[brv(i)]).
type checkWeights struct {
	wStd, wStdShoup []uint64
	wBR, wBRShoup   []uint64
}

// checkInit builds the weight table on first checked use. Cost: ~4N
// multiplies and one batched inversion (Montgomery's trick folds the N
// inversions of (p_k − 1) into prefix products around a single Inv).
func (t *Table) checkInit() {
	m := t.M
	n := t.N
	cw := &checkWeights{
		wStd:      make([]uint64, n),
		wStdShoup: make([]uint64, n),
		wBR:       make([]uint64, n),
		wBRShoup:  make([]uint64, n),
	}
	// ψ = powers[1] lives at the bit-reversed slot brv(1) = n/2.
	psi := t.psiBR[n>>1]
	omega := m.Mul(psi, psi)

	// p_k = ψ^{2k+1} and d_k = p_k − 1, then batch-invert the d's.
	p := make([]uint64, n)
	d := make([]uint64, n)
	prefix := make([]uint64, n)
	pk := psi
	acc := uint64(1)
	for k := 0; k < n; k++ {
		p[k] = pk
		d[k] = m.Sub(pk, 1)
		acc = m.Mul(acc, d[k])
		prefix[k] = acc
		pk = m.Mul(pk, omega)
	}
	inv := m.Inv(acc)
	twoOverN := m.Add(t.nInv, t.nInv)
	for k := n - 1; k >= 0; k-- {
		var dInv uint64
		if k == 0 {
			dInv = inv
		} else {
			dInv = m.Mul(inv, prefix[k-1])
			inv = m.Mul(inv, d[k])
		}
		cw.wStd[k] = m.Mul(twoOverN, m.Mul(p[k], dInv))
		cw.wStdShoup[k] = m.ShoupPrecomp(cw.wStd[k])
	}
	logN := log2(t.N)
	for i := 0; i < n; i++ {
		k := int(bitReverse(uint(i), logN))
		cw.wBR[i] = cw.wStd[k]
		cw.wBRShoup[i] = cw.wStdShoup[k]
	}
	t.check = cw
}

func (t *Table) weights() *checkWeights {
	t.checkOnce.Do(t.checkInit)
	return t.check
}

// CoeffChecksum is the residue checksum of a coefficient-domain row:
// its plain mod-q word sum. Carried alongside limb-major buffers by the
// integrity mode.
func (t *Table) CoeffChecksum(a []uint64) uint64 { return t.M.SumModVec(a) }

// NTTChecksum is the residue checksum of an NTT-domain row in the
// radix-2 kernel's bit-reversed layout: the weighted sum Σ w_i·y_i. A
// correct forward transform maps CoeffChecksum to NTTChecksum exactly.
func (t *Table) NTTChecksum(y []uint64) uint64 {
	cw := t.weights()
	return t.M.DotShoupVec(y, cw.wBR, cw.wBRShoup)
}

// NTTChecksumStandard is NTTChecksum for standard-order NTT data (the
// four-step transform's layout).
func (t *Table) NTTChecksumStandard(y []uint64) uint64 {
	cw := t.weights()
	return t.M.DotShoupVec(y, cw.wStd, cw.wStdShoup)
}

// scratchPool recycles the recompute scratch rows of the checked
// in-place transforms, keyed per table (rows have the table's degree).
var scratchPool sync.Pool // *[]uint64

func getScratch(n int) *[]uint64 {
	if p, ok := scratchPool.Get().(*[]uint64); ok && len(*p) >= n {
		return p
	}
	s := make([]uint64, n)
	return &s
}

// ForwardChecked is Forward under the integrity protocol: the input row
// is saved to scratch (fused with its checksum), transformed, and the
// output's weighted checksum verified against the input's plain one.
// On mismatch the transform replays from scratch up to the checker's
// recompute bound; a persistent mismatch restores the input and
// escalates. On success it returns the NTT-domain checksum of the
// output, for callers carrying per-limb checksums downstream.
func (t *Table) ForwardChecked(a []uint64, c *integrity.Checker) (uint64, error) {
	sp := getScratch(t.N)
	defer scratchPool.Put(sp)
	scratch := (*sp)[:t.N]
	want := t.M.Reduce128(modmath.CopySumVec(scratch, a))
	for attempt := 1; ; attempt++ {
		t.Forward(a)
		c.Corrupt(a)
		c.Checked()
		if got := t.NTTChecksum(a); got == want {
			return got, nil
		}
		c.Detected()
		if attempt > c.MaxRecompute() {
			copy(a, scratch)
			return 0, c.Escalate("ntt.Forward", attempt)
		}
		copy(a, scratch)
		c.Recomputed()
	}
}

// InverseChecked is Inverse under the integrity protocol: the
// NTT-domain input's weighted checksum is the reference, and the
// coefficient-domain output's plain checksum must land on it. Returns
// the coefficient-domain checksum on success.
func (t *Table) InverseChecked(a []uint64, c *integrity.Checker) (uint64, error) {
	sp := getScratch(t.N)
	defer scratchPool.Put(sp)
	scratch := (*sp)[:t.N]
	copy(scratch, a)
	want := t.NTTChecksum(scratch)
	for attempt := 1; ; attempt++ {
		t.Inverse(a)
		c.Corrupt(a)
		c.Checked()
		if got := t.CoeffChecksum(a); got == want {
			return got, nil
		}
		c.Detected()
		if attempt > c.MaxRecompute() {
			copy(a, scratch)
			return 0, c.Escalate("ntt.Inverse", attempt)
		}
		copy(a, scratch)
		c.Recomputed()
	}
}

// BatchForwardChecked is BatchForward under the integrity protocol,
// verifying every limb row across the worker pool. It returns the
// per-limb NTT-domain checksums; if any limb escalates, the first
// escalation (by limb index, deterministically) is returned and the
// remaining results are invalid.
func BatchForwardChecked(tables []*Table, rows [][]uint64, c *integrity.Checker) ([]uint64, error) {
	if len(tables) != len(rows) {
		panic("ntt: BatchForwardChecked limb count mismatch")
	}
	sums := make([]uint64, len(rows))
	errs := make([]error, len(rows))
	parallel.ForChunk(len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[i], errs[i] = tables[i].ForwardChecked(rows[i], c)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// BatchInverseChecked is BatchInverse under the integrity protocol.
func BatchInverseChecked(tables []*Table, rows [][]uint64, c *integrity.Checker) ([]uint64, error) {
	if len(tables) != len(rows) {
		panic("ntt: BatchInverseChecked limb count mismatch")
	}
	sums := make([]uint64, len(rows))
	errs := make([]error, len(rows))
	parallel.ForChunk(len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[i], errs[i] = tables[i].InverseChecked(rows[i], c)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// ForwardChecked is the four-step forward transform in WithIntegrity
// mode — the bench-gated path. The output residue checksum is fused
// into the existing 4q-correction sweep (ReduceFourQSumVec), and the
// verification identity is the free one the sum already satisfies:
// Σ_k y_k ≡ N·a_0 (mod q). That catches any single corrupted output
// word with certainty (bit-flip deltas are never ≡ 0 mod odd q);
// corruption of the input row at rest is the consumer-side check's job
// (verify a's CoeffChecksum against its carried value before calling).
// dst must not alias a — the input row is the recompute scratch.
func (fs *FourStep) ForwardChecked(dst, a []uint64, c *integrity.Checker) (uint64, error) {
	if &dst[0] == &a[0] {
		panic("ntt: FourStep.ForwardChecked dst must not alias a (input is the recompute scratch)")
	}
	m := fs.T.M
	want := m.Mul(uint64(fs.T.N), m.Reduce(a[0]))
	for attempt := 1; ; attempt++ {
		hi, lo := fs.forwardSum(dst, a)
		if c.Corrupt(dst) > 0 {
			hi, lo = modmath.SumVec(dst)
		}
		c.Checked()
		if got := m.Reduce128(hi, lo); got == want {
			return got, nil
		}
		c.Detected()
		if attempt > c.MaxRecompute() {
			return 0, c.Escalate("ntt.FourStep.Forward", attempt)
		}
		c.Recomputed()
	}
}

// InverseChecked is the four-step inverse under the integrity protocol,
// verified with the full weighted identity: the standard-order input's
// weighted checksum must equal the output coefficient row's plain sum,
// which is fused into the inverse twist's correction pass. dst must not
// alias a.
func (fs *FourStep) InverseChecked(dst, a []uint64, c *integrity.Checker) (uint64, error) {
	if &dst[0] == &a[0] {
		panic("ntt: FourStep.InverseChecked dst must not alias a (input is the recompute scratch)")
	}
	m := fs.T.M
	want := fs.T.NTTChecksumStandard(a)
	for attempt := 1; ; attempt++ {
		hi, lo := fs.inverseSum(dst, a)
		if c.Corrupt(dst) > 0 {
			hi, lo = modmath.SumVec(dst)
		}
		c.Checked()
		if got := m.Reduce128(hi, lo); got == want {
			return got, nil
		}
		c.Detected()
		if attempt > c.MaxRecompute() {
			return 0, c.Escalate("ntt.FourStep.Inverse", attempt)
		}
		c.Recomputed()
	}
}

// forwardSum is Forward with the output residue checksum fused into the
// row stage's correction sweep, returning the raw 128-bit sum of dst.
func (fs *FourStep) forwardSum(dst, a []uint64) (hi, lo uint64) {
	n1, n2 := fs.N1, fs.N2
	bufp := fs.getBuf()
	buf := *bufp
	if parallel.Workers() == 1 {
		tilep := fs.getTile()
		fs.colRangeFwd(buf, a, 0, n2, *tilep)
		hi, lo = fs.rowRangeFwdSum(dst, buf, 0, n1, *tilep)
		fs.tilePool.Put(tilep)
		fs.bufPool.Put(bufp)
		return hi, lo
	}
	var mu sync.Mutex
	parallel.ForChunk(n2, func(lo2, hi2 int) {
		tilep := fs.getTile()
		fs.colRangeFwd(buf, a, lo2, hi2, *tilep)
		fs.tilePool.Put(tilep)
	})
	parallel.ForChunk(n1, func(lo1, hi1 int) {
		tilep := fs.getTile()
		h, l := fs.rowRangeFwdSum(dst, buf, lo1, hi1, *tilep)
		fs.tilePool.Put(tilep)
		mu.Lock()
		var cy uint64
		lo, cy = addCarry(lo, l)
		hi += h + cy
		mu.Unlock()
	})
	fs.bufPool.Put(bufp)
	return hi, lo
}

// inverseSum is Inverse with the output residue checksum fused into the
// inverse twist's correction pass.
func (fs *FourStep) inverseSum(dst, a []uint64) (hi, lo uint64) {
	n1, n2 := fs.N1, fs.N2
	bufp := fs.getBuf()
	buf := *bufp
	if parallel.Workers() == 1 {
		tilep := fs.getTile()
		fs.rowRangeInv(buf, a, 0, n1, *tilep)
		hi, lo = fs.colRangeInvSum(dst, buf, 0, n2, *tilep)
		fs.tilePool.Put(tilep)
		fs.bufPool.Put(bufp)
		return hi, lo
	}
	var mu sync.Mutex
	parallel.ForChunk(n1, func(lo1, hi1 int) {
		tilep := fs.getTile()
		fs.rowRangeInv(buf, a, lo1, hi1, *tilep)
		fs.tilePool.Put(tilep)
	})
	parallel.ForChunk(n2, func(lo2, hi2 int) {
		tilep := fs.getTile()
		h, l := fs.colRangeInvSum(dst, buf, lo2, hi2, *tilep)
		fs.tilePool.Put(tilep)
		mu.Lock()
		var cy uint64
		lo, cy = addCarry(lo, l)
		hi += h + cy
		mu.Unlock()
	})
	fs.bufPool.Put(bufp)
	return hi, lo
}

// rowRangeFwdSum mirrors rowRangeFwd with ReduceFourQSumVec as the
// correction sweep, accumulating the checksum of the corrected rows.
func (fs *FourStep) rowRangeFwdSum(dst, buf []uint64, lo, hi int, tile []uint64) (sumHi, sumLo uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub2.brv
	for k1 := lo; k1 < hi; k1 += colBlock {
		bc := colBlock
		if k1+bc > hi {
			bc = hi - k1
		}
		for c := 0; c < bc; c++ {
			k := k1 + c
			row := buf[k*n2 : (k+1)*n2 : (k+1)*n2]
			tw := fs.twiddle[k*n2 : (k+1)*n2 : (k+1)*n2]
			tws := fs.twiddleShoup[k*n2 : (k+1)*n2 : (k+1)*n2]
			trow := tile[c*n2 : (c+1)*n2 : (c+1)*n2]
			for j2 := 0; j2 < n2; j2++ {
				trow[br[j2]] = m.MulShoupLazy(row[j2], tw[j2], tws[j2])
			}
			fs.sub2.forwardLazyBR(trow)
			h, l := m.ReduceFourQSumVec(trow)
			var carry uint64
			sumLo, carry = addCarry(sumLo, l)
			sumHi += h + carry
		}
		for k2 := 0; k2 < n2; k2++ {
			d := dst[k2*n1+k1:]
			for c := 0; c < bc; c++ {
				d[c] = tile[c*n2+k2]
			}
		}
	}
	return sumHi, sumLo
}

// colRangeInvSum mirrors colRangeInv with the final corrected scatter
// fused with the checksum accumulation.
func (fs *FourStep) colRangeInvSum(dst, buf []uint64, lo, hi int, tile []uint64) (sumHi, sumLo uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub1.brv
	for j2 := lo; j2 < hi; j2 += colBlock {
		bc := colBlock
		if j2+bc > hi {
			bc = hi - j2
		}
		for j1 := 0; j1 < n1; j1++ {
			src := buf[j1*n2+j2:]
			r := int(br[j1])
			for c := 0; c < bc; c++ {
				tile[c*n1+r] = src[c]
			}
		}
		for c := 0; c < bc; c++ {
			fs.sub1.inverseLazyBR(tile[c*n1 : (c+1)*n1])
		}
		for j1 := 0; j1 < n1; j1++ {
			d := dst[j1*n2+j2:]
			twi := fs.twistInv[j1*n2+j2:]
			twis := fs.twistInvShoup[j1*n2+j2:]
			for c := 0; c < bc; c++ {
				x := m.MulShoup(tile[c*n1+j1], twi[c], twis[c])
				d[c] = x
				var carry uint64
				sumLo, carry = addCarry(sumLo, x)
				sumHi += carry
			}
		}
	}
	return sumHi, sumLo
}

// addCarry adds b into a, returning the sum and carry-out.
func addCarry(a, b uint64) (sum, carry uint64) {
	sum = a + b
	if sum < a {
		carry = 1
	}
	return sum, carry
}

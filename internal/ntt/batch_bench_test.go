package ntt

import (
	"fmt"
	"testing"
)

// BenchmarkBatchNTT is the headline kernel-layer benchmark family: batch
// transforms over 1/8/32 limbs at ring degrees 2^12..2^16, the shapes
// the poly layer dispatches. The per-op numbers feed the "kernels" bench
// experiment gated by crophe-bench diff.
func BenchmarkBatchNTT(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, limbs := range []int{1, 8, 32} {
			tables, rows := batchFixture(b, n, limbs)
			b.Run(fmt.Sprintf("forward/N=%d/limbs=%d", n, limbs), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(8 * n * limbs))
				for i := 0; i < b.N; i++ {
					BatchForward(tables, rows)
				}
			})
			b.Run(fmt.Sprintf("inverse/N=%d/limbs=%d", n, limbs), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(8 * n * limbs))
				for i := 0; i < b.N; i++ {
					BatchInverse(tables, rows)
				}
			})
		}
	}
}

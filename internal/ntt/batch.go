package ntt

import "crophe/internal/parallel"

// Batch transforms: apply per-limb NTTs to a whole batch of residue rows
// with ONE dispatch over the worker pool instead of one parallel.For per
// limb. Rows are the limb-major views of a contiguous RNS buffer (see
// poly.NewPoly), so a worker chunk walks adjacent cache-resident limb
// blocks. Each rows[i] is transformed under tables[i]; the two slices
// must have equal length and every row must match its table's degree.

// BatchForward runs tables[i].Forward(rows[i]) for every i across the
// worker pool. Outputs are fully reduced, bit-identical to per-limb
// Forward calls in any worker configuration.
func BatchForward(tables []*Table, rows [][]uint64) {
	if len(tables) != len(rows) {
		panic("ntt: BatchForward limb count mismatch")
	}
	parallel.ForChunk(len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tables[i].Forward(rows[i])
		}
	})
}

// BatchInverse runs tables[i].Inverse(rows[i]) for every i across the
// worker pool.
func BatchInverse(tables []*Table, rows [][]uint64) {
	if len(tables) != len(rows) {
		panic("ntt: BatchInverse limb count mismatch")
	}
	parallel.ForChunk(len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tables[i].Inverse(rows[i])
		}
	})
}

package ntt

import (
	"fmt"
	"sync"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// FourStep evaluates the length-N negacyclic NTT through the four-step
// (a.k.a. six-step / decomposed) algorithm with N = N1·N2:
//
//	pre-twist by ψ^j → N2 column transforms of length N1 →
//	element-wise twiddle ω^{j2·k1} → transpose → N1 row transforms of
//	length N2.
//
// This mirrors the operator sequence the CROPHE scheduler materialises
// (col-(i)NTT, ⊗twiddle, transpose, row-(i)NTT) so the functional kernel
// and the scheduled dataflow share one source of truth. Results are in
// standard (natural) order: out[k] = a(ψ^{2k+1}).
type FourStep struct {
	T      *Table
	N1, N2 int

	sub1, sub2 *cyclicTable // cyclic DFT tables of sizes N1, N2

	twist      []uint64 // ψ^j, j = 0..N-1 (negacyclic pre-twist)
	twistInv   []uint64 // ψ^{-j}/N merged inverse twist
	twiddle    []uint64 // ω^{j2·k1} laid out [k1][j2] (N1×N2)
	twiddleInv []uint64

	// Scratch pools for the transpose temporaries: the N-element working
	// matrix and the per-worker column/row vectors. Reusing them keeps the
	// steady state allocation-free even when columns and rows are
	// transformed across the worker pool.
	bufPool sync.Pool // *[]uint64, length N
	vecPool sync.Pool // *[]uint64, length max(N1, N2)
}

func (fs *FourStep) getBuf() *[]uint64 {
	if b, ok := fs.bufPool.Get().(*[]uint64); ok {
		return b
	}
	b := make([]uint64, fs.N1*fs.N2)
	return &b
}

func (fs *FourStep) getVec() *[]uint64 {
	if v, ok := fs.vecPool.Get().(*[]uint64); ok {
		return v
	}
	n := fs.N1
	if fs.N2 > n {
		n = fs.N2
	}
	v := make([]uint64, n)
	return &v
}

// NewFourStep builds a decomposed transform for t.N = n1·n2, both powers
// of two ≥ 2.
func NewFourStep(t *Table, n1, n2 int) (*FourStep, error) {
	if n1 < 2 || n2 < 2 || n1&(n1-1) != 0 || n2&(n2-1) != 0 {
		return nil, fmt.Errorf("ntt: four-step factors %d×%d must be powers of two ≥ 2", n1, n2)
	}
	if n1*n2 != t.N {
		return nil, fmt.Errorf("ntt: four-step factors %d×%d do not multiply to N=%d", n1, n2, t.N)
	}
	m := t.M
	n := t.N
	psi, err := modmath.RootOfUnity(m, uint64(n))
	if err != nil {
		return nil, err
	}
	omega := m.Mul(psi, psi) // primitive N-th root
	psiInv := m.Inv(psi)

	fs := &FourStep{T: t, N1: n1, N2: n2}
	fs.sub1 = newCyclicTable(m, n1, m.Pow(omega, uint64(n2)))
	fs.sub2 = newCyclicTable(m, n2, m.Pow(omega, uint64(n1)))

	// The two sub-inverses already contribute 1/N1·1/N2 = 1/N, so the
	// inverse twist is plain ψ^{-j} with no extra scaling.
	fs.twist = make([]uint64, n)
	fs.twistInv = make([]uint64, n)
	w, wi := uint64(1), uint64(1)
	for j := 0; j < n; j++ {
		fs.twist[j] = w
		fs.twistInv[j] = wi
		w = m.Mul(w, psi)
		wi = m.Mul(wi, psiInv)
	}

	fs.twiddle = make([]uint64, n)
	fs.twiddleInv = make([]uint64, n)
	omegaInv := m.Inv(omega)
	for k1 := 0; k1 < n1; k1++ {
		for j2 := 0; j2 < n2; j2++ {
			e := uint64(k1) * uint64(j2)
			fs.twiddle[k1*n2+j2] = m.Pow(omega, e)
			fs.twiddleInv[k1*n2+j2] = m.Pow(omegaInv, e)
		}
	}
	return fs, nil
}

// Forward computes the standard-order negacyclic NTT of a into dst
// (dst[k] = a(ψ^{2k+1})). dst and a must have length N and may alias.
func (fs *FourStep) Forward(dst, a []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	n := n1 * n2
	if len(a) != n || len(dst) != n {
		panic("ntt: FourStep.Forward length mismatch")
	}
	// Step 0: negacyclic pre-twist b[j] = a[j]·ψ^j, viewed as N1×N2
	// row-major (rows j1, columns j2). Each parallel.ForChunk below is a
	// barrier, mirroring the stage boundaries the scheduler pipelines at.
	bufp := fs.getBuf()
	buf := *bufp
	parallel.ForChunk(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			buf[j] = m.Mul(a[j], fs.twist[j])
		}
	})
	// Step 1: column transforms — for each column j2, length-N1 cyclic
	// DFT over j1. Result X[k1][j2]. Columns are independent; each worker
	// chunk reuses one gather/scatter vector.
	parallel.ForChunk(n2, func(lo, hi int) {
		colp := fs.getVec()
		col := (*colp)[:n1]
		for j2 := lo; j2 < hi; j2++ {
			for j1 := 0; j1 < n1; j1++ {
				col[j1] = buf[j1*n2+j2]
			}
			fs.sub1.forward(col)
			for k1 := 0; k1 < n1; k1++ {
				buf[k1*n2+j2] = col[k1]
			}
		}
		fs.vecPool.Put(colp)
	})
	// Step 2: element-wise twiddle X[k1][j2] *= ω^{k1·j2}.
	parallel.ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = m.Mul(buf[i], fs.twiddle[i])
		}
	})
	// Step 3+4: row transforms over j2 for each k1; output index is
	// k2·N1 + k1 (the transpose the hardware realises in the transpose
	// unit).
	parallel.ForChunk(n1, func(lo, hi int) {
		rowp := fs.getVec()
		row := (*rowp)[:n2]
		for k1 := lo; k1 < hi; k1++ {
			copy(row, buf[k1*n2:(k1+1)*n2])
			fs.sub2.forward(row)
			for k2 := 0; k2 < n2; k2++ {
				dst[k2*n1+k1] = row[k2]
			}
		}
		fs.vecPool.Put(rowp)
	})
	fs.bufPool.Put(bufp)
}

// Inverse undoes Forward: given standard-order NTT values it reconstructs
// the coefficients, running the four steps mirrored.
func (fs *FourStep) Inverse(dst, a []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	n := n1 * n2
	if len(a) != n || len(dst) != n {
		panic("ntt: FourStep.Inverse length mismatch")
	}
	bufp := fs.getBuf()
	buf := *bufp
	// Undo the final transpose and the row transforms.
	parallel.ForChunk(n1, func(lo, hi int) {
		rowp := fs.getVec()
		row := (*rowp)[:n2]
		for k1 := lo; k1 < hi; k1++ {
			for k2 := 0; k2 < n2; k2++ {
				row[k2] = a[k2*n1+k1]
			}
			fs.sub2.inverse(row)
			copy(buf[k1*n2:(k1+1)*n2], row)
		}
		fs.vecPool.Put(rowp)
	})
	// Undo the twiddle.
	parallel.ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = m.Mul(buf[i], fs.twiddleInv[i])
		}
	})
	// Undo the column transforms.
	parallel.ForChunk(n2, func(lo, hi int) {
		colp := fs.getVec()
		col := (*colp)[:n1]
		for j2 := lo; j2 < hi; j2++ {
			for k1 := 0; k1 < n1; k1++ {
				col[k1] = buf[k1*n2+j2]
			}
			fs.sub1.inverse(col)
			for j1 := 0; j1 < n1; j1++ {
				buf[j1*n2+j2] = col[j1]
			}
		}
		fs.vecPool.Put(colp)
	})
	// Undo the negacyclic pre-twist.
	parallel.ForChunk(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = m.Mul(buf[j], fs.twistInv[j])
		}
	})
	fs.bufPool.Put(bufp)
}

// ForwardStandard runs the radix-2 transform and permutes the output into
// standard order, the reference FourStep.Forward must match.
func (t *Table) ForwardStandard(dst, a []uint64) {
	tmp := append([]uint64(nil), a...)
	t.Forward(tmp)
	logN := log2(t.N)
	for k := range dst {
		dst[k] = tmp[int(bitReverse(uint(k), logN))]
	}
}

// InverseStandard is the inverse of ForwardStandard.
func (t *Table) InverseStandard(dst, a []uint64) {
	tmp := make([]uint64, t.N)
	logN := log2(t.N)
	for k := range a {
		tmp[int(bitReverse(uint(k), logN))] = a[k]
	}
	t.Inverse(tmp)
	copy(dst, tmp)
}

func log2(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// cyclicTable is a plain (non-negacyclic) radix-2 DFT over Z_q with a given
// primitive n-th root, used for the four-step sub-transforms.
type cyclicTable struct {
	m     modmath.Modulus
	n     int
	wPow  []uint64 // ω^i
	wiPow []uint64 // ω^{-i}
	nInv  uint64
}

func newCyclicTable(m modmath.Modulus, n int, omega uint64) *cyclicTable {
	c := &cyclicTable{m: m, n: n, nInv: m.Inv(uint64(n))}
	c.wPow = make([]uint64, n)
	c.wiPow = make([]uint64, n)
	oi := m.Inv(omega)
	w, wi := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		c.wPow[i], c.wiPow[i] = w, wi
		w = m.Mul(w, omega)
		wi = m.Mul(wi, oi)
	}
	return c
}

// forward computes the in-order cyclic DFT X[k] = Σ a[j]·ω^{jk} using an
// iterative radix-2 algorithm with an initial bit-reversal permutation.
func (c *cyclicTable) forward(a []uint64) { c.transform(a, c.wPow, false) }

// inverse computes a[j] = (1/n)·Σ X[k]·ω^{-jk}.
func (c *cyclicTable) inverse(a []uint64) { c.transform(a, c.wiPow, true) }

func (c *cyclicTable) transform(a []uint64, pow []uint64, scale bool) {
	n := c.n
	m := c.m
	logN := log2(n)
	// Bit-reversal permutation to natural DIT order.
	for i := 0; i < n; i++ {
		j := int(bitReverse(uint(i), logN))
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for i := 0; i < half; i++ {
				w := pow[i*step]
				u := a[start+i]
				v := m.Mul(a[start+i+half], w)
				a[start+i] = m.Add(u, v)
				a[start+i+half] = m.Sub(u, v)
			}
		}
	}
	if scale {
		for i := range a {
			a[i] = m.Mul(a[i], c.nInv)
		}
	}
}

package ntt

import (
	"fmt"
	"sync"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// colBlock is the transpose tile width: columns (and transposed rows) are
// gathered and scattered in groups of colBlock so every pass over the
// N1×N2 working matrix touches contiguous cache lines on at least one
// side of the strided access.
const colBlock = 8

// FourStep evaluates the length-N negacyclic NTT through the four-step
// (a.k.a. six-step / decomposed) algorithm with N = N1·N2:
//
//	pre-twist by ψ^j → N2 column transforms of length N1 →
//	element-wise twiddle ω^{j2·k1} → transpose → N1 row transforms of
//	length N2.
//
// This mirrors the operator sequence the CROPHE scheduler materialises
// (col-(i)NTT, ⊗twiddle, transpose, row-(i)NTT) so the functional kernel
// and the scheduled dataflow share one source of truth. Results are in
// standard (natural) order: out[k] = a(ψ^{2k+1}).
//
// All interior stages run on lazy 2q/4q-residues (see internal/modmath's
// lazy layer); redundancy is corrected exactly once per direction — after
// the row transforms on the forward path, folded into the inverse twist
// on the inverse path — so the outputs are bit-identical to the strict
// reference while the butterflies stay branch-free.
type FourStep struct {
	T      *Table
	N1, N2 int

	sub1, sub2 *cyclicTable // cyclic DFT tables of sizes N1, N2

	twist           []uint64 // ψ^j, j = 0..N-1 (negacyclic pre-twist)
	twistShoup      []uint64
	twistInv        []uint64 // ψ^{-j}/N merged inverse twist
	twistInvShoup   []uint64
	twiddle         []uint64 // ω^{j2·k1} laid out [k1][j2] (N1×N2)
	twiddleShoup    []uint64
	twiddleInv      []uint64
	twiddleInvShoup []uint64

	// Scratch pools sized for the batch layout: the N-element working
	// matrix and the colBlock×max(N1,N2) transpose tiles. Reusing them
	// keeps the steady state allocation-free even when columns and rows
	// are transformed across the worker pool.
	bufPool  sync.Pool // *[]uint64, length N
	tilePool sync.Pool // *[]uint64, length colBlock·max(N1,N2)
}

func (fs *FourStep) getBuf() *[]uint64 {
	if b, ok := fs.bufPool.Get().(*[]uint64); ok {
		return b
	}
	b := make([]uint64, fs.N1*fs.N2)
	return &b
}

func (fs *FourStep) getTile() *[]uint64 {
	if v, ok := fs.tilePool.Get().(*[]uint64); ok {
		return v
	}
	n := fs.N1
	if fs.N2 > n {
		n = fs.N2
	}
	v := make([]uint64, colBlock*n)
	return &v
}

// NewFourStep builds a decomposed transform for t.N = n1·n2, both powers
// of two ≥ 2.
func NewFourStep(t *Table, n1, n2 int) (*FourStep, error) {
	if n1 < 2 || n2 < 2 || n1&(n1-1) != 0 || n2&(n2-1) != 0 {
		return nil, fmt.Errorf("ntt: four-step factors %d×%d must be powers of two ≥ 2", n1, n2)
	}
	if n1*n2 != t.N {
		return nil, fmt.Errorf("ntt: four-step factors %d×%d do not multiply to N=%d", n1, n2, t.N)
	}
	m := t.M
	n := t.N
	psi, err := modmath.RootOfUnity(m, uint64(n))
	if err != nil {
		return nil, err
	}
	omega := m.Mul(psi, psi) // primitive N-th root
	psiInv := m.Inv(psi)

	fs := &FourStep{T: t, N1: n1, N2: n2}
	fs.sub1 = newCyclicTable(m, n1, m.Pow(omega, uint64(n2)))
	fs.sub2 = newCyclicTable(m, n2, m.Pow(omega, uint64(n1)))

	// The two sub-inverses already contribute 1/N1·1/N2 = 1/N, so the
	// inverse twist is plain ψ^{-j} with no extra scaling.
	fs.twist = make([]uint64, n)
	fs.twistInv = make([]uint64, n)
	w, wi := uint64(1), uint64(1)
	for j := 0; j < n; j++ {
		fs.twist[j] = w
		fs.twistInv[j] = wi
		w = m.Mul(w, psi)
		wi = m.Mul(wi, psiInv)
	}

	fs.twiddle = make([]uint64, n)
	fs.twiddleInv = make([]uint64, n)
	omegaInv := m.Inv(omega)
	for k1 := 0; k1 < n1; k1++ {
		for j2 := 0; j2 < n2; j2++ {
			e := uint64(k1) * uint64(j2)
			fs.twiddle[k1*n2+j2] = m.Pow(omega, e)
			fs.twiddleInv[k1*n2+j2] = m.Pow(omegaInv, e)
		}
	}

	fs.twistShoup = make([]uint64, n)
	fs.twistInvShoup = make([]uint64, n)
	fs.twiddleShoup = make([]uint64, n)
	fs.twiddleInvShoup = make([]uint64, n)
	m.ShoupPrecompute(fs.twistShoup, fs.twist)
	m.ShoupPrecompute(fs.twistInvShoup, fs.twistInv)
	m.ShoupPrecompute(fs.twiddleShoup, fs.twiddle)
	m.ShoupPrecompute(fs.twiddleInvShoup, fs.twiddleInv)
	return fs, nil
}

// Forward computes the standard-order negacyclic NTT of a into dst
// (dst[k] = a(ψ^{2k+1})). dst and a must have length N and may alias.
//
// Residue ranges through the stages: twist <2q → column DFTs <4q →
// twiddle <2q → row DFTs <4q → corrected to <q before the transposed
// scatter into dst.
func (fs *FourStep) Forward(dst, a []uint64) {
	n1, n2 := fs.N1, fs.N2
	n := n1 * n2
	if len(a) != n || len(dst) != n {
		panic("ntt: FourStep.Forward length mismatch")
	}
	bufp := fs.getBuf()
	buf := *bufp
	if parallel.Workers() == 1 {
		// Serial fast path: call the stage helpers directly. The parallel
		// branch below passes closures to ForChunk, which forces them to
		// the heap; dodging the closures keeps steady-state Forward at
		// zero allocations (asserted by TestFourStepAllocFree).
		tilep := fs.getTile()
		fs.colRangeFwd(buf, a, 0, n2, *tilep)
		fs.rowRangeFwd(dst, buf, 0, n1, *tilep)
		fs.tilePool.Put(tilep)
		fs.bufPool.Put(bufp)
		return
	}
	// Each parallel.ForChunk is a barrier, mirroring the stage boundaries
	// the scheduler pipelines at. The twist is fused into the column
	// gather and the twiddle into the row stage, so two barriers suffice.
	parallel.ForChunk(n2, func(lo, hi int) {
		tilep := fs.getTile()
		fs.colRangeFwd(buf, a, lo, hi, *tilep)
		fs.tilePool.Put(tilep)
	})
	parallel.ForChunk(n1, func(lo, hi int) {
		tilep := fs.getTile()
		fs.rowRangeFwd(dst, buf, lo, hi, *tilep)
		fs.tilePool.Put(tilep)
	})
	fs.bufPool.Put(bufp)
}

// Inverse undoes Forward: given standard-order NTT values it reconstructs
// the coefficients, running the four steps mirrored. The lazy 2q-residues
// carried between stages are corrected by the final inverse-twist pass.
func (fs *FourStep) Inverse(dst, a []uint64) {
	n1, n2 := fs.N1, fs.N2
	n := n1 * n2
	if len(a) != n || len(dst) != n {
		panic("ntt: FourStep.Inverse length mismatch")
	}
	bufp := fs.getBuf()
	buf := *bufp
	if parallel.Workers() == 1 {
		tilep := fs.getTile()
		fs.rowRangeInv(buf, a, 0, n1, *tilep)
		fs.colRangeInv(dst, buf, 0, n2, *tilep)
		fs.tilePool.Put(tilep)
		fs.bufPool.Put(bufp)
		return
	}
	parallel.ForChunk(n1, func(lo, hi int) {
		tilep := fs.getTile()
		fs.rowRangeInv(buf, a, lo, hi, *tilep)
		fs.tilePool.Put(tilep)
	})
	parallel.ForChunk(n2, func(lo, hi int) {
		tilep := fs.getTile()
		fs.colRangeInv(dst, buf, lo, hi, *tilep)
		fs.tilePool.Put(tilep)
	})
	fs.bufPool.Put(bufp)
}

// colRangeFwd runs forward length-N1 cyclic DFTs over columns [lo, hi)
// of the row-major N1×N2 input, colBlock columns at a time: gather a
// tile of columns straight from the caller's input with the negacyclic
// pre-twist ψ^j fused in (contiguous reads along each matrix row),
// transform the tile rows in place, scatter into the working matrix.
// Outputs are 4q-residues.
func (fs *FourStep) colRangeFwd(buf, a []uint64, lo, hi int, tile []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub1.brv
	for j2 := lo; j2 < hi; j2 += colBlock {
		bc := colBlock
		if j2+bc > hi {
			bc = hi - j2
		}
		for j1 := 0; j1 < n1; j1++ {
			src := a[j1*n2+j2:]
			tw := fs.twist[j1*n2+j2:]
			tws := fs.twistShoup[j1*n2+j2:]
			r := int(br[j1])
			for c := 0; c < bc; c++ {
				tile[c*n1+r] = m.MulShoupLazy(src[c], tw[c], tws[c])
			}
		}
		for c := 0; c < bc; c++ {
			fs.sub1.forwardLazyBR(tile[c*n1 : (c+1)*n1])
		}
		for j1 := 0; j1 < n1; j1++ {
			dst := buf[j1*n2+j2:]
			for c := 0; c < bc; c++ {
				dst[c] = tile[c*n1+j1]
			}
		}
	}
}

// colRangeInv mirrors colRangeFwd for the inverse direction: gather
// columns of the working matrix, run the inverse (scaled) sub-transform,
// and scatter into dst with the inverse twist ψ^{-j} fused in, fully
// corrected — this is the single point where the inverse path's lazy
// residues return to canonical [0, q).
func (fs *FourStep) colRangeInv(dst, buf []uint64, lo, hi int, tile []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub1.brv
	for j2 := lo; j2 < hi; j2 += colBlock {
		bc := colBlock
		if j2+bc > hi {
			bc = hi - j2
		}
		for j1 := 0; j1 < n1; j1++ {
			src := buf[j1*n2+j2:]
			r := int(br[j1])
			for c := 0; c < bc; c++ {
				tile[c*n1+r] = src[c]
			}
		}
		for c := 0; c < bc; c++ {
			fs.sub1.inverseLazyBR(tile[c*n1 : (c+1)*n1])
		}
		for j1 := 0; j1 < n1; j1++ {
			d := dst[j1*n2+j2:]
			twi := fs.twistInv[j1*n2+j2:]
			twis := fs.twistInvShoup[j1*n2+j2:]
			for c := 0; c < bc; c++ {
				d[c] = m.MulShoup(tile[c*n1+j1], twi[c], twis[c])
			}
		}
	}
}

// rowRangeFwd processes rows [lo, hi) of the working matrix in colBlock
// groups: each row is gathered into the tile in bit-reversed order with
// the row-contiguous ω^{k1·j2} twiddle fused into the load, transformed,
// and corrected from 4q-residues to canonical; then the group performs
// the transposed scatter dst[k2·N1+k1] = tile-row[k2] in colBlock-wide
// stripes so the writes into dst are contiguous.
func (fs *FourStep) rowRangeFwd(dst, buf []uint64, lo, hi int, tile []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub2.brv
	for k1 := lo; k1 < hi; k1 += colBlock {
		bc := colBlock
		if k1+bc > hi {
			bc = hi - k1
		}
		for c := 0; c < bc; c++ {
			k := k1 + c
			row := buf[k*n2 : (k+1)*n2 : (k+1)*n2]
			tw := fs.twiddle[k*n2 : (k+1)*n2 : (k+1)*n2]
			tws := fs.twiddleShoup[k*n2 : (k+1)*n2 : (k+1)*n2]
			trow := tile[c*n2 : (c+1)*n2 : (c+1)*n2]
			for j2 := 0; j2 < n2; j2++ {
				trow[br[j2]] = m.MulShoupLazy(row[j2], tw[j2], tws[j2])
			}
			fs.sub2.forwardLazyBR(trow)
			m.ReduceFourQVec(trow)
		}
		for k2 := 0; k2 < n2; k2++ {
			d := dst[k2*n1+k1:]
			for c := 0; c < bc; c++ {
				d[c] = tile[c*n2+k2]
			}
		}
	}
}

// rowRangeInv gathers transposed rows k1 ∈ [lo, hi) from the standard-
// order input (tile reads are contiguous stripes of a), runs the inverse
// sub-transform, and stores them as rows of the working matrix with the
// inverse twiddle fused into the store. Outputs are 2q-residues.
func (fs *FourStep) rowRangeInv(buf, a []uint64, lo, hi int, tile []uint64) {
	m := fs.T.M
	n1, n2 := fs.N1, fs.N2
	br := fs.sub2.brv
	for k1 := lo; k1 < hi; k1 += colBlock {
		bc := colBlock
		if k1+bc > hi {
			bc = hi - k1
		}
		for k2 := 0; k2 < n2; k2++ {
			src := a[k2*n1+k1:]
			r := int(br[k2])
			for c := 0; c < bc; c++ {
				tile[c*n2+r] = src[c]
			}
		}
		for c := 0; c < bc; c++ {
			row := tile[c*n2 : (c+1)*n2]
			fs.sub2.inverseLazyBR(row)
			k := k1 + c
			m.MulShoupPairLazyVec(buf[k*n2:(k+1)*n2], row, fs.twiddleInv[k*n2:(k+1)*n2], fs.twiddleInvShoup[k*n2:(k+1)*n2])
		}
	}
}

// ForwardStandard runs the radix-2 transform and permutes the output into
// standard order, the reference FourStep.Forward must match.
func (t *Table) ForwardStandard(dst, a []uint64) {
	tmp := append([]uint64(nil), a...)
	t.Forward(tmp)
	logN := log2(t.N)
	for k := range dst {
		dst[k] = tmp[int(bitReverse(uint(k), logN))]
	}
}

// InverseStandard is the inverse of ForwardStandard.
func (t *Table) InverseStandard(dst, a []uint64) {
	tmp := make([]uint64, t.N)
	logN := log2(t.N)
	for k := range a {
		tmp[int(bitReverse(uint(k), logN))] = a[k]
	}
	t.Inverse(tmp)
	copy(dst, tmp)
}

func log2(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// cyclicTable is a plain (non-negacyclic) radix-2 DFT over Z_q with a given
// primitive n-th root, used for the four-step sub-transforms.
type cyclicTable struct {
	m     modmath.Modulus
	n     int
	wPow  []uint64 // ω^i
	wiPow []uint64 // ω^{-i}

	// Per-stage packed twiddles for the lazy DIT kernel: the stage with
	// half-size h occupies [h-1, 2h-1), entry i being ω^{i·n/(2h)} (resp.
	// the inverse), so every stage reads its twiddles contiguously.
	stageTw       []uint64
	stageTwShoup  []uint64
	stageTwi      []uint64
	stageTwiShoup []uint64

	brv []uint32 // bit-reversal permutation of [0, n)

	nInv      uint64
	nInvShoup uint64
}

func newCyclicTable(m modmath.Modulus, n int, omega uint64) *cyclicTable {
	c := &cyclicTable{m: m, n: n, nInv: m.Inv(uint64(n))}
	c.nInvShoup = m.ShoupPrecomp(c.nInv)
	c.wPow = make([]uint64, n)
	c.wiPow = make([]uint64, n)
	oi := m.Inv(omega)
	w, wi := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		c.wPow[i], c.wiPow[i] = w, wi
		w = m.Mul(w, omega)
		wi = m.Mul(wi, oi)
	}
	c.stageTw = make([]uint64, n-1)
	c.stageTwi = make([]uint64, n-1)
	for half := 1; half < n; half <<= 1 {
		step := n / (half << 1)
		for i := 0; i < half; i++ {
			c.stageTw[half-1+i] = c.wPow[i*step]
			c.stageTwi[half-1+i] = c.wiPow[i*step]
		}
	}
	c.stageTwShoup = make([]uint64, n-1)
	c.stageTwiShoup = make([]uint64, n-1)
	m.ShoupPrecompute(c.stageTwShoup, c.stageTw)
	m.ShoupPrecompute(c.stageTwiShoup, c.stageTwi)
	logN := log2(n)
	c.brv = make([]uint32, n)
	for i := 0; i < n; i++ {
		c.brv[i] = uint32(bitReverse(uint(i), logN))
	}
	return c
}

// forwardLazyBR computes the cyclic DFT X[k] = Σ a[j]·ω^{jk} of an input
// whose elements are ALREADY in bit-reversed order (the four-step gather
// loops write tile entries through brv, folding the DIT permutation into
// a pass that exists anyway). Lazy butterflies: inputs in [0, 4q),
// outputs in [0, 4q) in natural order, no final correction.
func (c *cyclicTable) forwardLazyBR(a []uint64) { c.transformLazyBR(a, c.stageTw, c.stageTwShoup, false) }

// inverseLazyBR computes a[j] = (1/n)·Σ X[k]·ω^{-jk} of a bit-reversed
// input; the lazy 1/n scaling brings the output into [0, 2q).
func (c *cyclicTable) inverseLazyBR(a []uint64) { c.transformLazyBR(a, c.stageTwi, c.stageTwiShoup, true) }

// transformLazyBR is the iterative radix-2 DIT kernel on lazy residues:
// log n butterfly stages entirely in [0, 4q), no permutation (the input
// is pre-bit-reversed). Stage twiddles come from the per-stage packed
// tables (stage with half h starts at offset h−1), so the inner loop
// reads them contiguously; stages with half ≥ 8 run an 8-way unrolled
// loop over re-sliced halves with the bounds checks eliminated.
func (c *cyclicTable) transformLazyBR(a []uint64, stw, stwShoup []uint64, scale bool) {
	n := c.n
	m := c.m
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := stw[half-1 : half-1+half : half-1+half]
		tws := stwShoup[half-1 : half-1+half : half-1+half]
		if half < 8 {
			for start := 0; start < n; start += size {
				for i := 0; i < half; i++ {
					a[start+i], a[start+i+half] = m.CTButterflyLazy(a[start+i], a[start+i+half], tw[i], tws[i])
				}
			}
			continue
		}
		for start := 0; start < n; start += size {
			x := a[start : start+half : start+half]
			y := a[start+half : start+size : start+size]
			for i := 0; i+7 < half; i += 8 {
				x[i+0], y[i+0] = m.CTButterflyLazy(x[i+0], y[i+0], tw[i+0], tws[i+0])
				x[i+1], y[i+1] = m.CTButterflyLazy(x[i+1], y[i+1], tw[i+1], tws[i+1])
				x[i+2], y[i+2] = m.CTButterflyLazy(x[i+2], y[i+2], tw[i+2], tws[i+2])
				x[i+3], y[i+3] = m.CTButterflyLazy(x[i+3], y[i+3], tw[i+3], tws[i+3])
				x[i+4], y[i+4] = m.CTButterflyLazy(x[i+4], y[i+4], tw[i+4], tws[i+4])
				x[i+5], y[i+5] = m.CTButterflyLazy(x[i+5], y[i+5], tw[i+5], tws[i+5])
				x[i+6], y[i+6] = m.CTButterflyLazy(x[i+6], y[i+6], tw[i+6], tws[i+6])
				x[i+7], y[i+7] = m.CTButterflyLazy(x[i+7], y[i+7], tw[i+7], tws[i+7])
			}
		}
	}
	if scale {
		m.MulShoupLazyVec(a, a, c.nInv, c.nInvShoup)
	}
}

// transform is the strict reference kernel (fully reduced butterflies),
// kept for the lazy-vs-strict equivalence tests.
func (c *cyclicTable) transform(a []uint64, pow []uint64, scale bool) {
	n := c.n
	m := c.m
	logN := log2(n)
	// Bit-reversal permutation to natural DIT order.
	for i := 0; i < n; i++ {
		j := int(bitReverse(uint(i), logN))
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for i := 0; i < half; i++ {
				w := pow[i*step]
				u := a[start+i]
				v := m.Mul(a[start+i+half], w)
				a[start+i] = m.Add(u, v)
				a[start+i+half] = m.Sub(u, v)
			}
		}
	}
	if scale {
		for i := range a {
			a[i] = m.Mul(a[i], c.nInv)
		}
	}
}

package ntt

import (
	"errors"
	"math/rand"
	"testing"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// TestCheckWeightsIdentity pins the weighted-checksum identity and the
// output-order mapping: for random polynomials over every small-prime
// table, the coefficient row's plain sum must equal the weighted sum of
// the forward transform's output — in the radix-2 bit-reversed layout
// AND the standard-order layout.
func TestCheckWeightsIdentity(t *testing.T) {
	for _, tbl := range smallTables(t) {
		rng := rand.New(rand.NewSource(int64(tbl.N)))
		for trial := 0; trial < 50; trial++ {
			a := randomPoly(rng, tbl.M.Q, tbl.N)
			want := tbl.CoeffChecksum(a)

			br := append([]uint64(nil), a...)
			tbl.Forward(br)
			if got := tbl.NTTChecksum(br); got != want {
				t.Fatalf("q=%d n=%d trial %d: bit-reversed weighted sum %d != coeff sum %d",
					tbl.M.Q, tbl.N, trial, got, want)
			}

			std := make([]uint64, tbl.N)
			tbl.ForwardStandard(std, a)
			if got := tbl.NTTChecksumStandard(std); got != want {
				t.Fatalf("q=%d n=%d trial %d: standard weighted sum %d != coeff sum %d",
					tbl.M.Q, tbl.N, trial, got, want)
			}
		}
	}
}

// TestCheckedZeroFalsePositives sweeps every scaled basis polynomial
// c·e_i over the full small-prime lazy-vs-strict corpus — the same
// corpus that pins kernel bit-exactness — through the checked forward
// and inverse transforms with no corruption injected. The verifier must
// never fire and the outputs must stay bit-identical to the unchecked
// kernels.
func TestCheckedZeroFalsePositives(t *testing.T) {
	for _, tbl := range smallTables(t) {
		q, n := tbl.M.Q, tbl.N
		c := integrity.NewChecker(1)
		checked := make([]uint64, n)
		plain := make([]uint64, n)
		for i := 0; i < n; i++ {
			for v := uint64(0); v < q; v++ {
				for j := range checked {
					checked[j], plain[j] = 0, 0
				}
				checked[i], plain[i] = v, v
				if _, err := tbl.ForwardChecked(checked, c); err != nil {
					t.Fatalf("q=%d n=%d forward(%d·e_%d): false positive: %v", q, n, v, i, err)
				}
				tbl.Forward(plain)
				for j := range checked {
					if checked[j] != plain[j] {
						t.Fatalf("q=%d n=%d forward(%d·e_%d) differs at %d", q, n, v, i, j)
					}
				}
				if _, err := tbl.InverseChecked(checked, c); err != nil {
					t.Fatalf("q=%d n=%d inverse(%d·e_%d): false positive: %v", q, n, v, i, err)
				}
				tbl.Inverse(plain)
				for j := range checked {
					if checked[j] != plain[j] {
						t.Fatalf("q=%d n=%d inverse(%d·e_%d) differs at %d", q, n, v, i, j)
					}
				}
			}
		}
		s := c.Stats()
		if s.Detected != 0 || s.Recomputed != 0 || s.Escalated != 0 {
			t.Fatalf("q=%d n=%d clean sweep reported corruption: %+v", q, n, s)
		}
		if s.Checks == 0 {
			t.Fatalf("q=%d n=%d checked sweep ran no checks", q, n)
		}
	}
}

// TestSingleBitFlipAlwaysDetected is the detection-bound test: the
// weighted checksum guarantees certainty against single-event upsets (a
// bit-flip delta ±2^b is never ≡ 0 mod an odd q and every weight is
// invertible). Exhaustively flip every bit of every output word and
// assert the verifier catches each one.
func TestSingleBitFlipAlwaysDetected(t *testing.T) {
	for _, tbl := range smallTables(t) {
		rng := rand.New(rand.NewSource(int64(tbl.N) + 7))
		a := randomPoly(rng, tbl.M.Q, tbl.N)
		want := tbl.CoeffChecksum(a)
		y := append([]uint64(nil), a...)
		tbl.Forward(y)
		for i := range y {
			for b := uint(0); b < 64; b++ {
				y[i] ^= 1 << b
				if got := tbl.NTTChecksum(y); got == want {
					t.Fatalf("q=%d n=%d: flip of bit %d in word %d not detected", tbl.M.Q, tbl.N, b, i)
				}
				y[i] ^= 1 << b
			}
		}
	}
}

// TestFourStepSumIdentityDetectsFlips pins the four-step path's fused
// identity (Σ y_k ≡ N·a_0): every single-bit flip of any output word
// must break it.
func TestFourStepSumIdentityDetectsFlips(t *testing.T) {
	tbl, err := NewTable(modmath.MustModulus(257), 64)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFourStep(tbl, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := tbl.M
	rng := rand.New(rand.NewSource(11))
	a := randomPoly(rng, m.Q, 64)
	dst := make([]uint64, 64)
	fs.Forward(dst, a)
	want := m.Mul(uint64(tbl.N), a[0])
	if got := m.Reduce128(modmath.SumVec(dst)); got != want {
		t.Fatalf("clean four-step sum %d != N·a0 %d", got, want)
	}
	for i := range dst {
		for b := uint(0); b < 64; b++ {
			dst[i] ^= 1 << b
			if got := m.Reduce128(modmath.SumVec(dst)); got == want {
				t.Fatalf("four-step flip of bit %d in word %d not detected", b, i)
			}
			dst[i] ^= 1 << b
		}
	}
}

// TestCheckedRecoversTransientFlip drives the transient (single-event)
// model: the injector corrupts the first attempt only, so the protocol
// must detect, recompute once, verify clean, and hand back the exact
// unchecked result.
func TestCheckedRecoversTransientFlip(t *testing.T) {
	tbl, err := NewTable(modmath.MustModulus(257), 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := randomPoly(rng, tbl.M.Q, tbl.N)
	want := append([]uint64(nil), a...)
	tbl.Forward(want)

	inj := integrity.NewInjector(42, 1)
	inj.Arm(1)
	c := integrity.NewChecker(42, integrity.WithInjector(inj))
	sum, err := tbl.ForwardChecked(a, c)
	if err != nil {
		t.Fatalf("transient flip escalated: %v", err)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("recovered output differs at %d", i)
		}
	}
	if sum != tbl.NTTChecksum(want) {
		t.Fatalf("recovered checksum %d mismatches", sum)
	}
	s := c.Stats()
	if s.Detected != 1 || s.Recomputed != 1 || s.Escalated != 0 || s.Checks != 2 {
		t.Fatalf("transient recovery stats: %+v", s)
	}
}

// TestCheckedEscalatesPersistentCorruption drives the stuck-cell model:
// every replay re-corrupts, so after the recompute bound the kernel
// must raise a typed *integrity.Error carrying the fault seed, and
// restore the caller's input row.
func TestCheckedEscalatesPersistentCorruption(t *testing.T) {
	tbl, err := NewTable(modmath.MustModulus(257), 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := randomPoly(rng, tbl.M.Q, tbl.N)
	orig := append([]uint64(nil), a...)

	inj := integrity.NewInjector(7, 1)
	inj.Persist(true)
	c := integrity.NewChecker(7, integrity.WithInjector(inj))
	_, err = tbl.ForwardChecked(a, c)
	if err == nil {
		t.Fatal("persistent corruption did not escalate")
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("escalation is not *integrity.Error: %v", err)
	}
	if ie.Seed != 7 {
		t.Fatalf("escalation lost the fault seed: %+v", ie)
	}
	if ie.Attempts != integrity.DefaultMaxRecompute+1 {
		t.Fatalf("escalated after %d attempts, want %d", ie.Attempts, integrity.DefaultMaxRecompute+1)
	}
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("input row not restored after escalation (index %d)", i)
		}
	}
	s := c.Stats()
	if s.Escalated != 1 || s.Detected != uint64(integrity.DefaultMaxRecompute+1) {
		t.Fatalf("persistent escalation stats: %+v", s)
	}
}

// TestBatchCheckedMatchesPlain pins the checked batch dispatch against
// the unchecked one, across worker-pool sizes, and verifies the
// returned per-limb checksums.
func TestBatchCheckedMatchesPlain(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		tables, rows := batchFixture(t, 256, 4)
		want := make([][]uint64, len(rows))
		for k := range rows {
			want[k] = append([]uint64(nil), rows[k]...)
			tables[k].Forward(want[k])
		}
		c := integrity.NewChecker(1)
		sums, err := BatchForwardChecked(tables, rows, c)
		if err != nil {
			t.Fatal(err)
		}
		for k := range rows {
			for i := range rows[k] {
				if rows[k][i] != want[k][i] {
					t.Fatalf("workers=%d checked forward limb %d differs at %d", workers, k, i)
				}
			}
			if sums[k] != tables[k].NTTChecksum(want[k]) {
				t.Fatalf("workers=%d limb %d checksum mismatch", workers, k)
			}
		}
		if _, err := BatchInverseChecked(tables, rows, c); err != nil {
			t.Fatal(err)
		}
		for k := range rows {
			tables[k].Inverse(want[k])
			for i := range rows[k] {
				if rows[k][i] != want[k][i] {
					t.Fatalf("workers=%d checked inverse limb %d differs at %d", workers, k, i)
				}
			}
		}
	}
}

// TestFourStepCheckedMatchesPlain pins the WithIntegrity four-step path
// bit-exactly against the unchecked transform in both directions and
// across worker counts, and exercises transient recovery and persistent
// escalation on it.
func TestFourStepCheckedMatchesPlain(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	n := 1024
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFourStep(tbl, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	a := randomPoly(rng, tbl.M.Q, n)
	wantFwd := make([]uint64, n)
	fs.Forward(wantFwd, a)
	wantInv := make([]uint64, n)
	fs.Inverse(wantInv, wantFwd)

	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		c := integrity.NewChecker(1)
		dst := make([]uint64, n)
		sum, err := fs.ForwardChecked(dst, a, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range dst {
			if dst[i] != wantFwd[i] {
				t.Fatalf("workers=%d checked four-step forward differs at %d", workers, i)
			}
		}
		if sum != tbl.M.Reduce128(modmath.SumVec(wantFwd)) {
			t.Fatalf("workers=%d carried checksum mismatch", workers)
		}
		inv := make([]uint64, n)
		if _, err := fs.InverseChecked(inv, dst, c); err != nil {
			t.Fatalf("workers=%d inverse: %v", workers, err)
		}
		for i := range inv {
			if inv[i] != wantInv[i] {
				t.Fatalf("workers=%d checked four-step inverse differs at %d", workers, i)
			}
		}
		if s := c.Stats(); s.Detected != 0 {
			t.Fatalf("workers=%d clean run detected corruption: %+v", workers, s)
		}
	}

	parallel.SetWorkers(1)
	inj := integrity.NewInjector(13, 0.1)
	inj.Arm(1)
	c := integrity.NewChecker(13, integrity.WithInjector(inj))
	dst := make([]uint64, n)
	if _, err := fs.ForwardChecked(dst, a, c); err != nil {
		t.Fatalf("transient four-step flip escalated: %v", err)
	}
	for i := range dst {
		if dst[i] != wantFwd[i] {
			t.Fatalf("four-step transient recovery differs at %d", i)
		}
	}
	if s := c.Stats(); s.Detected != 1 || s.Recomputed != 1 {
		t.Fatalf("four-step transient stats: %+v", s)
	}

	inj2 := integrity.NewInjector(17, 0.1)
	inj2.Persist(true)
	c2 := integrity.NewChecker(17, integrity.WithInjector(inj2))
	if _, err := fs.ForwardChecked(dst, a, c2); err == nil {
		t.Fatal("persistent four-step corruption did not escalate")
	} else {
		var ie *integrity.Error
		if !errors.As(err, &ie) || ie.Seed != 17 {
			t.Fatalf("four-step escalation error: %v", err)
		}
	}
}

// Package ntt implements negacyclic number-theoretic transforms over
// NTT-friendly prime fields, the central compute kernel of RNS-CKKS.
//
// Two evaluation strategies are provided:
//
//   - the classic in-place radix-2 transform (Cooley–Tukey butterflies for
//     the forward direction, Gentleman–Sande for the inverse), matching the
//     paired-lane butterfly datapath of the CROPHE PEs; and
//   - the four-step (decomposed) transform that reshapes length-N data into
//     an N1×N2 matrix and runs column transforms, a twiddle-factor
//     element-wise multiply, a transpose, and row transforms. This is the
//     decomposition the CROPHE scheduler exploits (paper §V-B) to pipeline
//     NTTs with neighbouring operators at N1/N2 granularity.
//
// A Table is immutable after construction and safe for concurrent use.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"crophe/internal/modmath"
)

// Table holds the precomputed twiddle factors for a (modulus, ring degree)
// pair. The negacyclic transform of a(X) in Z_q[X]/(X^N+1) evaluates the
// polynomial at odd powers of the 2N-th root of unity ψ.
type Table struct {
	M modmath.Modulus
	N int

	// ψ^brv(i) in bit-reversed order with Shoup companions, for the
	// forward Cooley–Tukey pass (merged negacyclic twist).
	psiBR      []uint64
	psiBRShoup []uint64
	// ψ^{-brv(i)} likewise for the inverse Gentleman–Sande pass.
	psiInvBR      []uint64
	psiInvBRShoup []uint64

	nInv      uint64 // N^{-1} mod q
	nInvShoup uint64

	// ABFT check-weight table (see integrity.go), built lazily on first
	// checked use so unchecked pipelines pay nothing for it.
	checkOnce sync.Once
	check     *checkWeights
}

// NewTable precomputes twiddles for ring degree n (a power of two ≥ 2)
// under modulus m, which must satisfy q ≡ 1 (mod 2n).
func NewTable(m modmath.Modulus, n int) (*Table, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: ring degree %d must be a power of two ≥ 2", n)
	}
	psi, err := modmath.RootOfUnity(m, uint64(n))
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	psiInv := m.Inv(psi)

	t := &Table{
		M: m, N: n,
		psiBR:         make([]uint64, n),
		psiBRShoup:    make([]uint64, n),
		psiInvBR:      make([]uint64, n),
		psiInvBRShoup: make([]uint64, n),
		nInv:          m.Inv(uint64(n)),
	}
	t.nInvShoup = m.ShoupPrecomp(t.nInv)

	logN := uint(bits.TrailingZeros(uint(n)))
	fwd, inv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	powersInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i], powersInv[i] = fwd, inv
		fwd = m.Mul(fwd, psi)
		inv = m.Mul(inv, psiInv)
	}
	for i := 0; i < n; i++ {
		j := int(bitReverse(uint(i), logN))
		t.psiBR[i] = powers[j]
		t.psiBRShoup[i] = m.ShoupPrecomp(powers[j])
		t.psiInvBR[i] = powersInv[j]
		t.psiInvBRShoup[i] = m.ShoupPrecomp(powersInv[j])
	}
	return t, nil
}

func bitReverse(x, width uint) uint {
	return uint(bits.Reverse64(uint64(x)) >> (64 - width))
}

// Forward transforms a (coefficient form, length N) into the negacyclic
// NTT domain in place. The output ordering is the standard bit-reversed
// "NTT representation"; Inverse undoes it exactly.
//
// Internally the transform runs the lazy-reduction kernel (residues
// carried in [0, 4q) across stages) with a single correction sweep at
// the end; the output is fully reduced and bit-identical to the strict
// per-butterfly-reduced kernel.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Forward on length %d, table degree %d", len(a), t.N))
	}
	t.forwardLazy(a)
	t.M.ReduceFourQVec(a)
}

// Inverse transforms a from the NTT domain back to coefficient form in
// place, including the 1/N scaling. Like Forward it runs the lazy
// kernel; the final scaling pass folds in the correction, so the output
// is fully reduced.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Inverse on length %d, table degree %d", len(a), t.N))
	}
	t.inverseLazyStages(a)
	t.M.MulShoupVec(a, a, t.nInv, t.nInvShoup)
}

// forwardLazy is the Cooley–Tukey kernel with Harvey's lazy reduction:
// inputs may be 2q-residues, every intermediate stays in [0, 4q), and
// NO final correction is applied — outputs are 4q-residues. Spans ≥ 8
// run an 8-way unrolled butterfly block with the twiddle pair hoisted
// out of the loop and both half-slices re-sliced to the span length so
// the compiler drops the bounds checks; the last three stages (spans 4,
// 2, 1) use the generic loop.
func (t *Table) forwardLazy(a []uint64) {
	m := t.M
	n := t.N
	k := 1
	span := n >> 1
	for ; span >= 8; span >>= 1 {
		for start := 0; start < n; start += span << 1 {
			w := t.psiBR[k]
			ws := t.psiBRShoup[k]
			k++
			x := a[start : start+span : start+span]
			y := a[start+span : start+span+span : start+span+span]
			for i := 0; i+7 < span; i += 8 {
				x[i+0], y[i+0] = m.CTButterflyLazy(x[i+0], y[i+0], w, ws)
				x[i+1], y[i+1] = m.CTButterflyLazy(x[i+1], y[i+1], w, ws)
				x[i+2], y[i+2] = m.CTButterflyLazy(x[i+2], y[i+2], w, ws)
				x[i+3], y[i+3] = m.CTButterflyLazy(x[i+3], y[i+3], w, ws)
				x[i+4], y[i+4] = m.CTButterflyLazy(x[i+4], y[i+4], w, ws)
				x[i+5], y[i+5] = m.CTButterflyLazy(x[i+5], y[i+5], w, ws)
				x[i+6], y[i+6] = m.CTButterflyLazy(x[i+6], y[i+6], w, ws)
				x[i+7], y[i+7] = m.CTButterflyLazy(x[i+7], y[i+7], w, ws)
			}
		}
	}
	for ; span >= 1; span >>= 1 {
		for start := 0; start < n; start += span << 1 {
			w := t.psiBR[k]
			ws := t.psiBRShoup[k]
			k++
			for i := start; i < start+span; i++ {
				a[i], a[i+span] = m.CTButterflyLazy(a[i], a[i+span], w, ws)
			}
		}
	}
}

// inverseLazyStages is the Gentleman–Sande kernel with lazy reduction:
// inputs must be 2q-residues (canonical residues qualify) and every
// intermediate — including the outputs — stays in [0, 2q). The 1/N
// scaling is NOT applied; callers fold it into their own final
// multiply-and-correct pass.
func (t *Table) inverseLazyStages(a []uint64) {
	m := t.M
	n := t.N
	span := 1
	for ; span < n && span < 8; span <<= 1 {
		h := n / (span << 1)
		for g := 0; g < h; g++ {
			start := g * (span << 1)
			w := t.psiInvBR[h+g]
			ws := t.psiInvBRShoup[h+g]
			for i := start; i < start+span; i++ {
				a[i], a[i+span] = m.GSButterflyLazy(a[i], a[i+span], w, ws)
			}
		}
	}
	for ; span < n; span <<= 1 {
		h := n / (span << 1)
		for g := 0; g < h; g++ {
			start := g * (span << 1)
			w := t.psiInvBR[h+g]
			ws := t.psiInvBRShoup[h+g]
			x := a[start : start+span : start+span]
			y := a[start+span : start+span+span : start+span+span]
			for i := 0; i+7 < span; i += 8 {
				x[i+0], y[i+0] = m.GSButterflyLazy(x[i+0], y[i+0], w, ws)
				x[i+1], y[i+1] = m.GSButterflyLazy(x[i+1], y[i+1], w, ws)
				x[i+2], y[i+2] = m.GSButterflyLazy(x[i+2], y[i+2], w, ws)
				x[i+3], y[i+3] = m.GSButterflyLazy(x[i+3], y[i+3], w, ws)
				x[i+4], y[i+4] = m.GSButterflyLazy(x[i+4], y[i+4], w, ws)
				x[i+5], y[i+5] = m.GSButterflyLazy(x[i+5], y[i+5], w, ws)
				x[i+6], y[i+6] = m.GSButterflyLazy(x[i+6], y[i+6], w, ws)
				x[i+7], y[i+7] = m.GSButterflyLazy(x[i+7], y[i+7], w, ws)
			}
		}
	}
}

// forwardStrict is the pre-lazy reference kernel: every butterfly fully
// reduces through the Modulus helpers. Kept as the strict half of the
// lazy-vs-strict equivalence tests; Forward must match it bit-exactly.
func (t *Table) forwardStrict(a []uint64) {
	m := t.M
	n := t.N
	k := 1
	for span := n >> 1; span >= 1; span >>= 1 {
		for start := 0; start < n; start += span << 1 {
			w := t.psiBR[k]
			ws := t.psiBRShoup[k]
			k++
			for i := start; i < start+span; i++ {
				// Cooley–Tukey butterfly: (u, v) -> (u + w·v, u - w·v).
				u := a[i]
				v := m.MulShoup(a[i+span], w, ws)
				a[i] = m.Add(u, v)
				a[i+span] = m.Sub(u, v)
			}
		}
	}
}

// inverseStrict is the strict reference for Inverse, including the 1/N
// scaling.
func (t *Table) inverseStrict(a []uint64) {
	m := t.M
	n := t.N
	// Gentleman–Sande: walk spans from 1 back up to n/2. With h groups in
	// a stage, group g uses the inverse twiddle at bit-reversed index h+g.
	for span := 1; span < n; span <<= 1 {
		h := n / (span << 1)
		for g := 0; g < h; g++ {
			start := g * (span << 1)
			w := t.psiInvBR[h+g]
			ws := t.psiInvBRShoup[h+g]
			for i := start; i < start+span; i++ {
				// GS butterfly: (u, v) -> (u + v, (u - v)·w).
				u := a[i]
				v := a[i+span]
				a[i] = m.Add(u, v)
				a[i+span] = m.MulShoup(m.Sub(u, v), w, ws)
			}
		}
	}
	for i := range a {
		a[i] = m.MulShoup(a[i], t.nInv, t.nInvShoup)
	}
}

// MulPoly multiplies two coefficient-form polynomials negacyclically
// (mod X^N + 1) by transform – pointwise multiply – inverse transform.
// dst, a and b must all have length N; dst may alias a or b.
func (t *Table) MulPoly(dst, a, b []uint64) {
	ta := append([]uint64(nil), a...)
	tb := append([]uint64(nil), b...)
	t.Forward(ta)
	t.Forward(tb)
	for i := range ta {
		ta[i] = t.M.Mul(ta[i], tb[i])
	}
	t.Inverse(ta)
	copy(dst, ta)
}

// NegacyclicConvolveNaive is the O(N²) schoolbook reference used by tests:
// c_k = Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+N} a_i·b_j (mod q).
func NegacyclicConvolveNaive(m modmath.Modulus, a, b []uint64) []uint64 {
	n := len(a)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = m.Add(c[k], p)
			} else {
				c[k-n] = m.Sub(c[k-n], p)
			}
		}
	}
	return c
}

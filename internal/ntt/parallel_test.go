package ntt

import (
	"math/rand"
	"testing"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// TestFourStepParallelBitExact runs the decomposed transform at pool size
// 1 and at a large pool and requires bit-identical outputs, including when
// dst aliases the input and when scratch buffers are recycled across
// calls.
func TestFourStepParallelBitExact(t *testing.T) {
	const n, n1, n2 = 1024, 32, 32
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFourStep(tbl, n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % tbl.M.Q
	}

	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)

	parallel.SetWorkers(1)
	serialFwd := make([]uint64, n)
	fs.Forward(serialFwd, a)
	serialInv := make([]uint64, n)
	fs.Inverse(serialInv, serialFwd)

	parallel.SetWorkers(16)
	// Two rounds so the second one exercises pooled scratch.
	for round := 0; round < 2; round++ {
		parFwd := make([]uint64, n)
		fs.Forward(parFwd, a)
		for i := range parFwd {
			if parFwd[i] != serialFwd[i] {
				t.Fatalf("round %d: Forward diverges at %d", round, i)
			}
		}
		// Aliased in-place call.
		inPlace := append([]uint64(nil), a...)
		fs.Forward(inPlace, inPlace)
		for i := range inPlace {
			if inPlace[i] != serialFwd[i] {
				t.Fatalf("round %d: aliased Forward diverges at %d", round, i)
			}
		}
		parInv := make([]uint64, n)
		fs.Inverse(parInv, parFwd)
		for i := range parInv {
			if parInv[i] != serialInv[i] {
				t.Fatalf("round %d: Inverse diverges at %d", round, i)
			}
		}
		if parInv[0] != a[0] || parInv[n-1] != a[n-1] {
			t.Fatalf("round %d: inverse is not a round trip", round)
		}
	}
}

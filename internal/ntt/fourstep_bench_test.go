package ntt

import (
	"math/rand"
	"testing"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
)

func benchSetup(b *testing.B, n int) (*Table, *FourStep, []uint64) {
	b.Helper()
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	m := modmath.MustModulus(ps[0])
	t, err := NewTable(m, n)
	if err != nil {
		b.Fatal(err)
	}
	n1 := 1
	for n1*n1 < n {
		n1 <<= 1
	}
	fs, err := NewFourStep(t, n1, n/n1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	return t, fs, a
}

func BenchmarkFourStepForward(b *testing.B) {
	_, fs, a := benchSetup(b, 4096)
	dst := make([]uint64, len(a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Forward(dst, a)
	}
}

func BenchmarkFourStepInverse(b *testing.B) {
	_, fs, a := benchSetup(b, 4096)
	dst := make([]uint64, len(a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Inverse(dst, a)
	}
}

// BenchmarkFourStepForwardIntegrity is the ABFT-checked counterpart of
// BenchmarkFourStepForward; the delta between the two is the integrity
// overhead the bench-diff gate pins to ≤3%.
func BenchmarkFourStepForwardIntegrity(b *testing.B) {
	_, fs, a := benchSetup(b, 4096)
	dst := make([]uint64, len(a))
	ck := integrity.NewChecker(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ForwardChecked(dst, a, ck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFourStepInverseIntegrity(b *testing.B) {
	_, fs, a := benchSetup(b, 4096)
	dst := make([]uint64, len(a))
	ck := integrity.NewChecker(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.InverseChecked(dst, a, ck); err != nil {
			b.Fatal(err)
		}
	}
}

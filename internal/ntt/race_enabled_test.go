//go:build race

package ntt

// raceEnabled reports that the race detector is active; sync.Pool is
// deliberately lossy in that mode, so allocation-count assertions on
// pooled scratch do not hold.
const raceEnabled = true

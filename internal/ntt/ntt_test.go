package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crophe/internal/modmath"
)

func testTable(t *testing.T, n int) *Table {
	t.Helper()
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randomPoly(rng *rand.Rand, q uint64, n int) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return a
}

func TestNewTableRejectsBadDegree(t *testing.T) {
	m := modmath.MustModulus(12289)
	for _, n := range []int{0, 1, 3, 12, 1000} {
		if _, err := NewTable(m, n); err == nil {
			t.Errorf("NewTable(n=%d) should fail", n)
		}
	}
	// 97 ≡ 1 mod 32 fails for n=64 (needs q ≡ 1 mod 128).
	if _, err := NewTable(modmath.MustModulus(97), 64); err == nil {
		t.Error("modulus without required root order should fail")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		tbl := testTable(t, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 5; trial++ {
			a := randomPoly(rng, tbl.M.Q, n)
			got := append([]uint64(nil), a...)
			tbl.Forward(got)
			tbl.Inverse(got)
			for i := range a {
				if got[i] != a[i] {
					t.Fatalf("n=%d roundtrip mismatch at %d: %d != %d", n, i, got[i], a[i])
				}
			}
		}
	}
}

func TestForwardIsLinear(t *testing.T) {
	tbl := testTable(t, 64)
	m := tbl.M
	rng := rand.New(rand.NewSource(7))
	a := randomPoly(rng, m.Q, 64)
	b := randomPoly(rng, m.Q, 64)
	c := rng.Uint64() % m.Q

	// NTT(a + c·b) == NTT(a) + c·NTT(b)
	sum := make([]uint64, 64)
	for i := range sum {
		sum[i] = m.Add(a[i], m.Mul(c, b[i]))
	}
	tbl.Forward(sum)
	ta := append([]uint64(nil), a...)
	tb := append([]uint64(nil), b...)
	tbl.Forward(ta)
	tbl.Forward(tb)
	for i := range sum {
		if want := m.Add(ta[i], m.Mul(c, tb[i])); sum[i] != want {
			t.Fatalf("linearity fails at %d", i)
		}
	}
}

func TestMulPolyMatchesNaive(t *testing.T) {
	for _, n := range []int{4, 8, 32, 128} {
		tbl := testTable(t, n)
		rng := rand.New(rand.NewSource(int64(n) + 1))
		a := randomPoly(rng, tbl.M.Q, n)
		b := randomPoly(rng, tbl.M.Q, n)
		got := make([]uint64, n)
		tbl.MulPoly(got, a, b)
		want := NegacyclicConvolveNaive(tbl.M, a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d mismatch at %d: got %d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestMulPolyNegacyclicWraparound(t *testing.T) {
	// X^(N-1) · X = X^N ≡ -1 (mod X^N + 1).
	n := 16
	tbl := testTable(t, n)
	a := make([]uint64, n)
	b := make([]uint64, n)
	a[n-1] = 1
	b[1] = 1
	c := make([]uint64, n)
	tbl.MulPoly(c, a, b)
	if c[0] != tbl.M.Q-1 {
		t.Fatalf("X^(N-1)·X: c[0] = %d, want q-1", c[0])
	}
	for i := 1; i < n; i++ {
		if c[i] != 0 {
			t.Fatalf("X^(N-1)·X: c[%d] = %d, want 0", i, c[i])
		}
	}
}

func TestMulPolyIdentity(t *testing.T) {
	n := 32
	tbl := testTable(t, n)
	rng := rand.New(rand.NewSource(9))
	a := randomPoly(rng, tbl.M.Q, n)
	one := make([]uint64, n)
	one[0] = 1
	got := make([]uint64, n)
	tbl.MulPoly(got, a, one)
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("a·1 != a at %d", i)
		}
	}
}

func TestForwardStandardMatchesDirectEvaluation(t *testing.T) {
	// out[k] must equal a(ψ^{2k+1}).
	n := 32
	tbl := testTable(t, n)
	m := tbl.M
	psi, err := modmath.RootOfUnity(m, uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	a := randomPoly(rng, m.Q, n)
	got := make([]uint64, n)
	tbl.ForwardStandard(got, a)
	for k := 0; k < n; k++ {
		x := m.Pow(psi, uint64(2*k+1))
		var want uint64
		for j := n - 1; j >= 0; j-- { // Horner
			want = m.Add(m.Mul(want, x), a[j])
		}
		if got[k] != want {
			t.Fatalf("standard-order NTT mismatch at k=%d: got %d want %d", k, got[k], want)
		}
	}
}

func TestInverseStandardRoundTrip(t *testing.T) {
	n := 128
	tbl := testTable(t, n)
	rng := rand.New(rand.NewSource(13))
	a := randomPoly(rng, tbl.M.Q, n)
	f := make([]uint64, n)
	back := make([]uint64, n)
	tbl.ForwardStandard(f, a)
	tbl.InverseStandard(back, f)
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("standard roundtrip mismatch at %d", i)
		}
	}
}

func TestFourStepMatchesRadix2(t *testing.T) {
	cases := []struct{ n, n1, n2 int }{
		{16, 4, 4}, {64, 8, 8}, {64, 4, 16}, {64, 16, 4},
		{256, 16, 16}, {1024, 32, 32}, {1024, 8, 128},
	}
	for _, c := range cases {
		tbl := testTable(t, c.n)
		fs, err := NewFourStep(tbl, c.n1, c.n2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(c.n*c.n1 + c.n2)))
		a := randomPoly(rng, tbl.M.Q, c.n)
		want := make([]uint64, c.n)
		tbl.ForwardStandard(want, a)
		got := make([]uint64, c.n)
		fs.Forward(got, a)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("N=%d %dx%d four-step forward mismatch at %d: got %d want %d",
					c.n, c.n1, c.n2, i, got[i], want[i])
			}
		}
		back := make([]uint64, c.n)
		fs.Inverse(back, got)
		for i := range a {
			if back[i] != a[i] {
				t.Fatalf("N=%d %dx%d four-step inverse mismatch at %d", c.n, c.n1, c.n2, i)
			}
		}
	}
}

func TestFourStepRejectsBadFactors(t *testing.T) {
	tbl := testTable(t, 64)
	bad := []struct{ n1, n2 int }{{1, 64}, {64, 1}, {3, 21}, {8, 16}, {2, 16}}
	for _, c := range bad {
		if _, err := NewFourStep(tbl, c.n1, c.n2); err == nil {
			t.Errorf("NewFourStep(%d,%d) should fail", c.n1, c.n2)
		}
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	tbl := testTable(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.Forward(make([]uint64, 8))
}

func TestConvolutionTheoremProperty(t *testing.T) {
	// Property: for random sparse polynomials, NTT(a⊛b) == NTT(a)·NTT(b)
	// pointwise, where ⊛ is the naive negacyclic convolution.
	n := 16
	tbl := testTable(t, n)
	m := tbl.M
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPoly(rng, m.Q, n)
		b := randomPoly(rng, m.Q, n)
		conv := NegacyclicConvolveNaive(m, a, b)
		tbl.Forward(conv)
		tbl.Forward(a)
		tbl.Forward(b)
		for i := range conv {
			if conv[i] != m.Mul(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward1024(b *testing.B)  { benchForward(b, 1024) }
func BenchmarkForward4096(b *testing.B)  { benchForward(b, 4096) }
func BenchmarkForward16384(b *testing.B) { benchForward(b, 16384) }

func benchForward(b *testing.B, n int) {
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := randomPoly(rng, tbl.M.Q, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(a)
	}
}

func BenchmarkFourStep4096(b *testing.B) {
	n := 4096
	ps, err := modmath.GeneratePrimes(45, uint64(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := NewTable(modmath.MustModulus(ps[0]), n)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := NewFourStep(tbl, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := randomPoly(rng, tbl.M.Q, n)
	dst := make([]uint64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Forward(dst, a)
	}
}

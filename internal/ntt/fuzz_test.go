package ntt

import (
	"encoding/binary"
	"sync"
	"testing"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
)

// fuzzTable builds one small NTT table shared by all fuzz iterations
// (table construction dominates the runtime otherwise).
var fuzzTable = struct {
	once sync.Once
	t    *Table
	err  error
}{}

const fuzzN = 64

func getFuzzTable(t *testing.T) *Table {
	fuzzTable.once.Do(func() {
		primes, err := modmath.GeneratePrimes(45, fuzzN, 1)
		if err != nil {
			fuzzTable.err = err
			return
		}
		fuzzTable.t, fuzzTable.err = NewTable(modmath.MustModulus(primes[0]), fuzzN)
	})
	if fuzzTable.err != nil {
		t.Fatalf("fuzz table: %v", fuzzTable.err)
	}
	return fuzzTable.t
}

// FuzzNTTRoundTrip checks Inverse∘Forward = id on fuzzer-chosen
// coefficient vectors, and that the transform output stays in [0, q).
func FuzzNTTRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	seed := make([]byte, 8*fuzzN)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := getFuzzTable(t)
		q := tbl.M.Q

		coeffs := make([]uint64, fuzzN)
		for i := range coeffs {
			if len(data) >= 8 {
				coeffs[i] = binary.LittleEndian.Uint64(data[:8]) % q
				data = data[8:]
			}
		}
		orig := append([]uint64(nil), coeffs...)

		tbl.Forward(coeffs)
		for i, v := range coeffs {
			if v >= q {
				t.Fatalf("Forward output[%d] = %d escapes [0,%d)", i, v, q)
			}
		}
		tbl.Inverse(coeffs)
		for i := range coeffs {
			if coeffs[i] != orig[i] {
				t.Fatalf("round-trip mismatch at %d: got %d, want %d", i, coeffs[i], orig[i])
			}
		}

		// ABFT invariants on the same vector: the weighted NTT checksum
		// must equal the coefficient checksum, and the checked transforms
		// must round-trip with zero false positives and identical output.
		wantSum := tbl.CoeffChecksum(orig)
		c := integrity.NewChecker(1)
		sum, err := tbl.ForwardChecked(coeffs, c)
		if err != nil {
			t.Fatalf("ForwardChecked false positive: %v", err)
		}
		if sum != wantSum {
			t.Fatalf("forward checksum %d, want coeff checksum %d", sum, wantSum)
		}
		if _, err := tbl.InverseChecked(coeffs, c); err != nil {
			t.Fatalf("InverseChecked false positive: %v", err)
		}
		for i := range coeffs {
			if coeffs[i] != orig[i] {
				t.Fatalf("checked round-trip mismatch at %d", i)
			}
		}
		if s := c.Stats(); s.Detected != 0 {
			t.Fatalf("clean fuzz vector reported corruption: %+v", s)
		}
	})
}

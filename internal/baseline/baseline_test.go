package baseline

import (
	"testing"

	"crophe/internal/sched"
	"crophe/internal/workload"
)

func TestPairingsMatchPaper(t *testing.T) {
	ps := Pairings()
	if len(ps) != 4 {
		t.Fatalf("pairings: %d", len(ps))
	}
	wants := []struct {
		base, cro string
		word      int
	}{
		{"BTS", "CROPHE-64", 64},
		{"ARK", "CROPHE-64", 64},
		{"SHARP", "CROPHE-36", 36},
		{"CL+", "CROPHE-28", 28},
	}
	for i, w := range wants {
		if ps[i].Baseline.Name != w.base || ps[i].CROPHE.Name != w.cro {
			t.Errorf("pairing %d: %s vs %s", i, ps[i].Baseline.Name, ps[i].CROPHE.Name)
		}
		if ps[i].CROPHE.WordBits != w.word {
			t.Errorf("pairing %d word bits %d want %d", i, ps[i].CROPHE.WordBits, w.word)
		}
		// Each pairing must use the baseline's own parameter set.
		if ps[i].Params.Name == "" {
			t.Errorf("pairing %d missing params", i)
		}
	}
}

func TestCROPHE28IsScaledCopy(t *testing.T) {
	if CROPHE28.WordBits != 28 {
		t.Fatal("word width")
	}
	if CROPHE28.NumPEs != 128 || CROPHE28.Lanes != 256 {
		t.Fatal("CROPHE-28 must keep the 36-bit microarchitecture")
	}
	// Mutating the copy must not leak into CROPHE36.
	if CROPHE28.FUShare != nil {
		t.Fatal("homogeneous design should not carry FU shares")
	}
}

func TestDesignsAndFactories(t *testing.T) {
	p := Pairings()[1] // ARK
	ds := p.Designs()
	if len(ds) != 4 {
		t.Fatalf("designs: %d", len(ds))
	}
	names := []string{"ARK+MAD", "CROPHE-64+MAD", "CROPHE-64", "CROPHE-64-p"}
	for i, d := range ds {
		if d.Name != names[i] {
			t.Errorf("design %d = %s want %s", i, d.Name, names[i])
		}
	}
	fs := p.WorkloadFactories()
	for _, wn := range WorkloadNames() {
		f, ok := fs[wn]
		if !ok {
			t.Fatalf("missing workload %s", wn)
		}
		w := f(workload.RotHoisted, 0)
		if w.TotalOps() == 0 {
			t.Fatalf("workload %s empty", wn)
		}
	}
	// A quick end-to-end evaluation of the fastest design sanity-checks
	// the wiring.
	res := ds[0].Evaluate(fs["bootstrapping"])
	if res.TimeSec <= 0 {
		t.Fatal("evaluation produced no time")
	}
	_ = sched.DataflowMAD
}

// Package baseline assembles the evaluated design points of the paper:
// each baseline accelerator (BTS, ARK, SHARP, CL+) reproduced with MAD
// scheduling on its own parameter set, paired with the CROPHE variant of
// matching word width (§VI: a 64-bit CROPHE against BTS/ARK, a 36-bit one
// against SHARP, and the same configuration scaled to 28 bits against
// CraterLake).
package baseline

import (
	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

// Pairing couples a baseline with the CROPHE variant it is compared to
// and the parameter set both run (Table III).
type Pairing struct {
	Baseline *arch.HWConfig
	CROPHE   *arch.HWConfig
	Params   arch.ParamSet
}

// CROPHE28 is the 36-bit configuration scaled to 28-bit words for the
// CraterLake comparison (the paper omits its Table I column).
var CROPHE28 = func() *arch.HWConfig {
	c := arch.CROPHE36.Clone()
	c.Name = "CROPHE-28"
	c.WordBits = 28
	return c
}()

// Pairings returns the four baseline comparisons of Figure 9.
func Pairings() []Pairing {
	return []Pairing{
		{Baseline: arch.BTS, CROPHE: arch.CROPHE64, Params: arch.ParamsBTS},
		{Baseline: arch.ARK, CROPHE: arch.CROPHE64, Params: arch.ParamsARK},
		{Baseline: arch.SHARP, CROPHE: arch.CROPHE36, Params: arch.ParamsSHARP},
		{Baseline: arch.CLPlus, CROPHE: CROPHE28, Params: arch.ParamsCL},
	}
}

// Designs returns the four Figure 9 design points for a pairing:
// baseline+MAD, CROPHE-hardware+MAD, CROPHE, CROPHE-p.
func (p Pairing) Designs() []sched.Design {
	return sched.PaperDesigns(p.CROPHE, p.Baseline)
}

// WorkloadFactories returns the paper's four benchmarks under this
// pairing's parameters, keyed by workload name, each as the
// rotation-structure factory the scheduler sweeps.
func (p Pairing) WorkloadFactories() map[string]sched.WorkloadFactory {
	ps := p.Params
	return map[string]sched.WorkloadFactory{
		"bootstrapping": func(m workload.RotMode, r int) *workload.Workload {
			return workload.Bootstrapping(ps, m, r)
		},
		"helr1024": func(m workload.RotMode, r int) *workload.Workload {
			return workload.HELR(ps, m, r)
		},
		"resnet-20": func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(ps, 20, m, r)
		},
		"resnet-110": func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(ps, 110, m, r)
		},
	}
}

// WorkloadNames lists the benchmarks in the paper's plotting order.
func WorkloadNames() []string {
	return []string{"bootstrapping", "helr1024", "resnet-20", "resnet-110"}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenCollector builds a small fixed collector covering every event
// kind the exporter emits: multiple tracks, multiple lanes, span args,
// and counters.
func goldenCollector() *Collector {
	c := New()
	c.EmitSpan("Schedule", "segments", "C2S", 0, 120, Arg{"count", 3})
	c.EmitSpan("PE", "array", "group 0", 0, 80, Arg{"ops", 5})
	c.EmitSpan("PE", "row 0", "group 0", 0, 80)
	c.EmitSpan("PE", "row 1", "group 0", 0, 80)
	c.EmitSpan("NoC", "links", "group 0", 0, 33.5)
	c.EmitSpan("SRAM", "banks", "group 0", 0, 12.25)
	c.EmitSpan("HBM", "channels", "group 0", 0, 64)
	c.EmitCounter("noc/link/0,0/E", 4096)
	c.EmitCounter("hbm/bursts", 64)
	c.EmitCounter("sched/candidates", 17)
	return c
}

// TestChromeTraceGolden pins the exact serialized schema. Regenerate the
// golden after an intentional format change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/telemetry -run ChromeTraceGolden
func TestChromeTraceGolden(t *testing.T) {
	got, err := goldenCollector().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace schema drifted from golden %s\n got: %s", path, got)
	}
}

// TestChromeTraceSchemaShape validates the structural contract Perfetto
// and chrome://tracing rely on, independent of exact bytes.
func TestChromeTraceSchemaShape(t *testing.T) {
	data, err := goldenCollector().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}
	tracks := map[string]bool{}
	var xEvents, cEvents int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "X":
			xEvents++
			if ev.Dur == nil || *ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("complete event %q missing/negative ts or dur", ev.Name)
			}
		case "C":
			cEvents++
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter event %q missing value", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"PE", "NoC", "SRAM", "HBM"} {
		if !tracks[want] {
			t.Errorf("missing %s track", want)
		}
	}
	if xEvents != 7 || cEvents != 3 {
		t.Fatalf("event counts X=%d C=%d want 7/3", xEvents, cEvents)
	}
}

package telemetry

import (
	"context"
	"runtime/pprof"
	"runtime/trace"
)

// Host-profile correlation: the modeled-cycle trace answers "where do
// cycles go on the accelerator"; these hooks answer "where does the host
// spend wall clock producing that model". Wrapping simulator and
// experiment entry points in a runtime/trace task plus pprof labels means
// a `go test -trace` / `go tool pprof` session can slice host samples by
// the same workload/experiment names that appear in the Chrome trace.

// WithHostSpan runs fn inside a runtime/trace task named name and with a
// pprof label crophe=name. Both are no-ops costing a few allocations when
// no host trace or CPU profile is active, so callers do not need to guard
// this (it runs once per simulation or experiment, not per event).
func WithHostSpan(ctx context.Context, name string, fn func(context.Context)) {
	ctx, task := trace.NewTask(ctx, name)
	defer task.End()
	pprof.Do(ctx, pprof.Labels("crophe", name), fn)
}

// HostRegion marks a sub-phase inside a WithHostSpan scope. Returns the
// function that ends the region:
//
//	defer telemetry.HostRegion(ctx, "simulate")()
func HostRegion(ctx context.Context, name string) func() {
	r := trace.StartRegion(ctx, name)
	return r.End
}

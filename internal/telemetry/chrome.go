package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The Chrome trace-event exporter maps the collector onto the JSON Object
// Format consumed by chrome://tracing and Perfetto: each Track becomes a
// process (named via "process_name" metadata), each Lane a thread within
// it, spans become complete ("X") events and counters become counter
// ("C") events on a dedicated pid. Timestamps are microseconds in the
// format; we write model cycles directly, so the timeline reads in
// cycles.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	TraceEvents     []chromeEvent  `json:"traceEvents"`
}

// counterPid is the process id reserved for counter tracks; real tracks
// start at 1.
const counterPid = 0

// ChromeTrace renders the collector as Chrome trace-event JSON. The
// output is deterministic: track/lane ids are assigned in first-emission
// order, spans serialise in emission order, counters in name order.
func (c *Collector) ChromeTrace() ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: cannot export a disabled (nil) collector")
	}
	spans := c.Spans()
	counters := c.Counters()

	// Assign pids/tids in first-seen order so repeated exports of the
	// same collector are identical.
	type laneKey struct {
		pid  int
		lane string
	}
	pidOf := map[string]int{}
	var trackNames []string
	tidOf := map[laneKey]int{}
	type laneName struct {
		pid, tid int
		name     string
	}
	var laneNames []laneName
	for _, s := range spans {
		pid, ok := pidOf[s.Track]
		if !ok {
			pid = len(trackNames) + 1 // pid 0 is the counter track
			pidOf[s.Track] = pid
			trackNames = append(trackNames, s.Track)
		}
		lk := laneKey{pid, s.Lane}
		if _, ok := tidOf[lk]; !ok {
			tid := len(laneNames) + 1
			tidOf[lk] = tid
			laneNames = append(laneNames, laneName{pid: pid, tid: tid, name: s.Lane})
		}
	}

	events := make([]chromeEvent, 0, 2*len(trackNames)+len(laneNames)+len(spans)+len(counters))
	for i, name := range trackNames {
		pid := i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		events = append(events, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid},
		})
	}
	for _, ln := range laneNames {
		name := ln.name
		if name == "" {
			name = "main"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: ln.pid, Tid: ln.tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		dur := s.Dur
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Pid: pidOf[s.Track], Tid: tidOf[laneKey{pidOf[s.Track], s.Lane}],
			Ts: s.Start, Dur: &dur,
		}
		if len(s.Args) > 0 {
			args := make(map[string]any, len(s.Args))
			for _, a := range s.Args {
				args[a.Key] = a.Value
			}
			ev.Args = args
		}
		events = append(events, ev)
	}
	// Counters() is name-sorted, so counter events are deterministic too.
	for _, ct := range counters {
		events = append(events, chromeEvent{
			Name: ct.Name, Ph: "C", Pid: counterPid,
			Args: map[string]any{"value": ct.Value},
		})
	}

	other := map[string]any{"cycle_domain": "model", "time_unit": c.TimeUnit()}
	doc := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       other,
		TraceEvents:     events,
	}
	return json.MarshalIndent(&doc, "", " ")
}

// WriteChromeTrace writes the Chrome trace-event JSON to w.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	data, err := c.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteChromeTraceFile writes the trace to a file path (the CLIs' -trace
// flag).
func (c *Collector) WriteChromeTraceFile(path string) error {
	data, err := c.ChromeTrace()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Package telemetry is the cycle-level observability layer of the CROPHE
// stack: a zero-cost-when-disabled event/counter subsystem the simulator,
// scheduler, NoC and memory models emit into, with a Chrome trace-event
// (chrome://tracing / Perfetto) exporter and host-profile correlation
// hooks.
//
// The design contract is that a nil *Collector is a valid, disabled
// collector: every method is nil-safe, and Enabled() on a nil receiver
// returns false. Hot paths must still guard emission sites with
//
//	if tel.Enabled() {
//		tel.EmitSpan(...)
//	}
//
// so that argument construction (string formatting, slice allocation) is
// never paid when telemetry is off — the crophe-lint `telemetryguard`
// analyzer enforces this invariant statically.
//
// All times are model cycles, not wall clock: the exporter maps one cycle
// to one trace microsecond, so Perfetto's timeline reads directly in
// cycles. Collectors are safe for concurrent emission (mutex-guarded) and
// their exported output is deterministic: spans serialise in emission
// order and counters in name order, so two runs of the same schedule
// produce byte-identical traces.
package telemetry

import (
	"sort"
	"sync"
)

// Arg is one key/value annotation attached to a span. Args are plain
// ordered pairs (not a map) so trace output never depends on map
// iteration order.
type Arg struct {
	Key   string
	Value float64
}

// Span is one busy interval of a modeled resource, in cycles.
type Span struct {
	// Track is the resource group the span belongs to ("PE", "NoC",
	// "SRAM", "HBM", "Schedule") — exported as a Chrome trace process.
	Track string
	// Lane is the sub-track within the group (a PE row, "links",
	// "channels") — exported as a Chrome trace thread.
	Lane string
	// Name labels the span (segment, group, or transfer identity).
	Name string
	// Start and Dur are in model cycles.
	Start float64
	Dur   float64
	Args  []Arg
}

// Counter is one aggregated named counter value.
type Counter struct {
	Name  string
	Value float64
}

// Collector gathers spans and counters for one simulation run. The zero
// value is not used directly; construct with New. A nil *Collector is the
// disabled collector.
type Collector struct {
	mu       sync.Mutex
	spans    []Span
	counters map[string]float64
	timeUnit string
}

// New returns an enabled, empty collector.
func New() *Collector {
	return &Collector{counters: make(map[string]float64)}
}

// SetTimeUnit overrides the unit label written into the exported trace's
// otherData ("cycles" by default). crophe-bench uses "ms" because its
// experiment spans are wall clock, not model time. Nil-safe.
func (c *Collector) SetTimeUnit(unit string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.timeUnit = unit
	c.mu.Unlock()
}

// TimeUnit returns the unit label of the trace timeline.
func (c *Collector) TimeUnit() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeUnit == "" {
		return "cycles"
	}
	return c.timeUnit
}

// Enabled reports whether the collector records events. A nil receiver is
// disabled; emission sites use this as their zero-cost guard.
func (c *Collector) Enabled() bool { return c != nil }

// EmitSpan records one busy interval. Callers must guard with Enabled()
// so span-argument construction is free when telemetry is off; the call
// itself is also nil-safe as a second line of defence.
func (c *Collector) EmitSpan(track, lane, name string, start, dur float64, args ...Arg) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, Span{
		Track: track, Lane: lane, Name: name,
		Start: start, Dur: dur, Args: args,
	})
	c.mu.Unlock()
}

// EmitCounter accumulates delta into the named counter. Nil-safe; callers
// must still guard with Enabled() (key construction is often the real
// cost).
func (c *Collector) EmitCounter(name string, delta float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Counter returns the current value of one counter (0 when absent or
// disabled).
func (c *Collector) Counter(name string) float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Counters returns all counters sorted by name — the deterministic
// aggregate view merged into sim.Result and the crophe-bench report.
func (c *Collector) Counters() []Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Counter, 0, len(c.counters))
	for name, v := range c.counters {
		out = append(out, Counter{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterMap returns a copy of the counters as a map (for JSON encoding,
// which sorts keys itself).
func (c *Collector) CounterMap() map[string]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Spans returns a copy of the recorded spans in emission order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// SpanCount returns the number of recorded spans without copying.
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Reset drops all recorded spans and counters, keeping the collector
// enabled.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = c.spans[:0]
	c.counters = make(map[string]float64)
	c.mu.Unlock()
}

package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestNilCollectorIsDisabledAndSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	// Every method must be nil-safe.
	c.EmitSpan("PE", "row 0", "g0", 0, 10)
	c.EmitCounter("x", 1)
	c.Reset()
	if c.Counter("x") != 0 || c.Counters() != nil || c.Spans() != nil || c.SpanCount() != 0 {
		t.Fatal("nil collector leaked state")
	}
	if c.CounterMap() != nil {
		t.Fatal("nil collector returned a counter map")
	}
	if _, err := c.ChromeTrace(); err == nil {
		t.Fatal("exporting a nil collector should fail")
	}
}

func TestSpanAndCounterAccumulation(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("fresh collector disabled")
	}
	c.EmitSpan("PE", "array", "group 0", 0, 100, Arg{"ops", 4})
	c.EmitSpan("NoC", "links", "group 0", 0, 40)
	c.EmitCounter("noc/bytes", 64)
	c.EmitCounter("noc/bytes", 36)
	c.EmitCounter("hbm/bursts", 2)

	if n := c.SpanCount(); n != 2 {
		t.Fatalf("span count %d want 2", n)
	}
	if v := c.Counter("noc/bytes"); v != 100 {
		t.Fatalf("counter accumulation %v want 100", v)
	}
	cs := c.Counters()
	if len(cs) != 2 || cs[0].Name != "hbm/bursts" || cs[1].Name != "noc/bytes" {
		t.Fatalf("counters not name-sorted: %+v", cs)
	}
	spans := c.Spans()
	if spans[0].Track != "PE" || spans[0].Args[0].Key != "ops" {
		t.Fatalf("span content %+v", spans[0])
	}

	c.Reset()
	if c.SpanCount() != 0 || len(c.Counters()) != 0 {
		t.Fatal("reset did not clear state")
	}
	if !c.Enabled() {
		t.Fatal("reset disabled the collector")
	}
}

// TestConcurrentEmissionRaceClean hammers one collector from many
// goroutines; `go test -race` proves the mutex guards every path.
func TestConcurrentEmissionRaceClean(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if c.Enabled() {
					c.EmitSpan("PE", fmt.Sprintf("row %d", w), "g", float64(i), 1)
					c.EmitCounter("spans", 1)
				}
				_ = c.Counter("spans")
				if i%50 == 0 {
					_ = c.Counters()
					_ = c.Spans()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Counter("spans"); got != workers*perWorker {
		t.Fatalf("lost counter increments: %v want %d", got, workers*perWorker)
	}
	if got := c.SpanCount(); got != workers*perWorker {
		t.Fatalf("lost spans: %d want %d", got, workers*perWorker)
	}
}

// TestChromeTraceDeterministic re-exports the same collector and rebuilds
// an identical collector; all exports must be byte-identical.
func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *Collector {
		c := New()
		for i := 0; i < 5; i++ {
			c.EmitSpan("PE", fmt.Sprintf("row %d", i%2), fmt.Sprintf("group %d", i),
				float64(i)*10, 8, Arg{"ops", float64(i)})
			c.EmitCounter(fmt.Sprintf("noc/link/%d", 4-i), float64(i))
		}
		c.EmitSpan("HBM", "channels", "aux", 0, 30)
		return c
	}
	c := build()
	a, err := c.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-export of the same collector differs")
	}
	c2 := build()
	d, err := c2.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, d) {
		t.Fatal("export of an identically-built collector differs")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := New()
	c.EmitSpan("PE", "array", "g", 0, 1)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[buf.Len()-1] != '\n' {
		t.Fatal("trace output missing or not newline-terminated")
	}
}

func TestHostSpanRunsBody(t *testing.T) {
	ran := false
	WithHostSpan(context.Background(), "unit", func(ctx context.Context) {
		defer HostRegion(ctx, "inner")()
		ran = true
	})
	if !ran {
		t.Fatal("WithHostSpan did not run the body")
	}
}

// Dataflow study: schedule the bootstrapping workload on the CROPHE
// accelerator under the Figure 11 ablation ladder — MAD, the basic
// cross-operator dataflow, +NTT decomposition, +hybrid rotation, and the
// full combination — then validate the winner on the cycle simulator.
// This is the paper's §VII-D experiment as a library walk-through.
package main

import (
	"fmt"
	"log"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

func main() {
	params := arch.ParamsSHARP
	hw := arch.CROPHE36.WithSRAM(45) // the small-SRAM setting of Fig. 11
	factory := func(m workload.RotMode, r int) *workload.Workload {
		return workload.Bootstrapping(params, m, r)
	}

	fmt.Printf("workload: bootstrapping (%s parameters), hardware: %s @ %.0f MB SRAM\n\n",
		params.Name, hw.Name, hw.SRAMCapacityMB)
	fmt.Printf("%-8s %10s %10s %10s %12s\n", "design", "time (ms)", "DRAM (GB)", "SRAM (GB)", "vs MAD")

	var madTime float64
	var best *sched.Schedule
	for _, d := range sched.AblationDesigns(hw) {
		res := d.Evaluate(factory)
		if d.Name == "MAD" {
			madTime = res.TimeSec
		}
		speedup := madTime / res.TimeSec
		fmt.Printf("%-8s %10.3f %10.2f %10.1f %11.2fx\n",
			d.Name, res.TimeSec*1e3, res.Traffic.DRAM/1e9, res.Traffic.SRAM/1e9, speedup)
		best = res
	}

	// Validate the full design on the cycle-level simulator, with the
	// observability layer attached (sim.New's functional options).
	w := factory(workload.RotHybrid, 4).DecomposeNTTs()
	tel := telemetry.New()
	r, err := sim.New(hw, sim.WithTelemetry(tel)).SimulateSchedule(w, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncycle simulation of the full design: %.3f ms "+
		"(PE %.0f%%, NoC %.0f%%, SRAM %.0f%%, DRAM %.0f%%)\n",
		r.TimeSec*1e3, r.Util.PE*100, r.Util.NoC*100, r.Util.SRAM*100, r.Util.DRAM*100)
	fmt.Printf("telemetry: %d spans, %.0f on-chip transfers, %.0f HBM bursts\n",
		tel.SpanCount(), tel.Counter("sim/transfers"), tel.Counter("hbm/bursts"))

	// And show the discovered structure of one segment.
	fmt.Println("\ndiscovered dataflow of the first C2S segment:")
	seg := best.Segments[0]
	for gi, g := range seg.Groups {
		if gi >= 6 {
			fmt.Printf("  ... %d more groups\n", len(seg.Groups)-gi)
			break
		}
		fmt.Printf("  group %2d: %d ops, %d fine-pipelined edges, %.1f µs\n",
			gi, len(g.Nodes), g.Pipelined, g.TimeSec*1e6)
	}
}

// Quickstart: encrypt a vector, compute homomorphically (add, multiply,
// rotate), decrypt, and check the results against plaintext arithmetic —
// the CKKS substrate every CROPHE workload runs on.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"crophe/internal/ckks"
)

func main() {
	// A small but fully functional parameter set: ring degree 2^10,
	// 3 rescaling levels, key-switching digits of 2 limbs.
	params, err := ckks.TestParameters(10, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CKKS: N=%d, slots=%d, L=%d, dnum=%d\n",
		params.N(), params.Slots(), params.MaxLevel(), params.DNum())

	rng := ckks.NewTestRand(2026)
	kg := ckks.NewKeyGenerator(params, rng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenEvaluationKeySet(sk, []int{1, 4}) // rotation keys for r=1, r=4

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, rng)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, keys)

	// Two messages.
	x := make([]complex128, params.Slots())
	y := make([]complex128, params.Slots())
	for i := range x {
		x[i] = complex(float64(i%7)/10, 0)
		y[i] = complex(float64(i%5)/10, 0)
	}
	ctX, err := ckks.EncryptAtLevel(enc, encryptor, x, params.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}
	ctY, err := ckks.EncryptAtLevel(enc, encryptor, y, params.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}

	// HAdd.
	sum, err := eval.Add(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	report("x + y", enc.Decode(decryptor.Decrypt(sum)), func(i int) complex128 { return x[i] + y[i] })

	// HMult + HRescale.
	prod, err := eval.MulRelin(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	if prod, err = eval.Rescale(prod); err != nil {
		log.Fatal(err)
	}
	report("x * y", enc.Decode(decryptor.Decrypt(prod)), func(i int) complex128 { return x[i] * y[i] })

	// HRot by 4 slots.
	rot, err := eval.Rotate(ctX, 4)
	if err != nil {
		log.Fatal(err)
	}
	n := params.Slots()
	report("rot(x, 4)", enc.Decode(decryptor.Decrypt(rot)), func(i int) complex128 { return x[(i+4)%n] })
}

func report(name string, got []complex128, want func(int) complex128) {
	var worst float64
	for i := range got {
		if e := cmplx.Abs(got[i] - want(i)); e > worst {
			worst = e
		}
	}
	fmt.Printf("%-12s max error %.2e  (first slots:", name, worst)
	for i := 0; i < 4; i++ {
		fmt.Printf(" %.3f", real(got[i]))
	}
	fmt.Println(" ...)")
}

// Encrypted matrix–vector multiplication with the BSGS method of
// Algorithm 1 — the PtMatVecMult kernel that dominates bootstrapping —
// comparing the three baby-step rotation strategies of Figure 8
// (Min-KS, Hoisting, Hybrid) on the same computation.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"
	"sort"

	"crophe/internal/boot"
	"crophe/internal/ckks"
)

func main() {
	params, err := ckks.TestParameters(7, 3, 2) // 64 slots
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()

	// A random dense matrix and input vector.
	rng := rand.New(rand.NewSource(7))
	m := make([][]complex128, slots)
	for i := range m {
		m[i] = make([]complex128, slots)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()*2-1, 0)
		}
	}
	lt, err := boot.NewLinearTransform(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSGS split: n = %d = %d × %d, %d diagonals\n",
		slots, lt.N1, lt.N2, lt.NumDiagonals())

	// Key material: the BSGS rotations plus what each strategy needs.
	rotSet := map[int]bool{}
	for _, r := range lt.Rotations() {
		rotSet[r] = true
	}
	strategies := []boot.RotationStrategy{
		boot.MinKS{}, boot.Hoisting{}, boot.Hybrid{RHyb: 4},
	}
	for _, s := range strategies {
		for _, r := range s.Keys(lt.N1) {
			rotSet[r] = true
		}
	}
	var rotations []int
	for r := range rotSet {
		rotations = append(rotations, r)
	}
	// Key-generation order feeds the deterministic test PRNG; sort so
	// repeated runs produce identical keys and ciphertexts.
	sort.Ints(rotations)

	crand := ckks.NewTestRand(99)
	kg := ckks.NewKeyGenerator(params, crand)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenEvaluationKeySet(sk, rotations)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, crand)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, keys)

	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, 0)
	}
	want := lt.Apply(v)

	ct, err := ckks.EncryptAtLevel(enc, encryptor, v, params.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range strategies {
		out, err := lt.Evaluate(eval, enc, ct, s)
		if err != nil {
			log.Fatal(err)
		}
		got := enc.Decode(decryptor.Decrypt(out))
		var worst float64
		for i := range want {
			if e := cmplx.Abs(got[i] - want[i]); e > worst {
				worst = e
			}
		}
		ops := boot.CountOps(s, lt.N1)
		fmt.Printf("%-12s max error %.2e, %2d key-switches, %2d distinct evks\n",
			s.Name(), worst, ops.KeySwitches, ops.DistinctEvk)
	}
	fmt.Println("All three strategies compute the same M×v — they differ " +
		"only in dataflow, which is what CROPHE's hybrid rotation exploits.")
}

// End-to-end CKKS bootstrapping on the functional substrate: a level-0
// ciphertext is refreshed through ModRaise → CoeffToSlot → EvalMod →
// SlotToCoeff — the exact pipeline whose dataflow the CROPHE scheduler
// optimises — and the message survives with measurable precision.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"crophe/internal/boot"
	"crophe/internal/ckks"
)

func main() {
	// Small ring, enough levels for C2S(1) + EvalMod(≈8) + S2C(1).
	params, err := ckks.TestParameters(4, 11, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters: N=%d, slots=%d, L=%d\n", params.N(), params.Slots(), params.MaxLevel())

	rng := ckks.NewTestRand(11)
	kg := ckks.NewKeyGenerator(params, rng)
	// Sparse secret: bounds the ModRaise overflow |I| (sparse-packed
	// bootstrapping [14]).
	sk := kg.GenSecretKeySparse(4)
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)

	cfg := boot.BootstrapConfig{K: 4, SineDeg: 63, Strategy: boot.Hybrid{RHyb: 2}}
	// First pass collects the rotation amounts the pipeline needs.
	probe := boot.NewBootstrapper(params, enc, ckks.NewEvaluator(params, nil), cfg)
	keys := kg.GenEvaluationKeySet(sk, probe.Rotations())
	eval := ckks.NewEvaluator(params, keys)
	b := boot.NewBootstrapper(params, enc, eval, cfg)
	fmt.Printf("bootstrapper: EvalMod degree %d, level budget %d, %d rotation keys\n",
		cfg.SineDeg, b.LevelBudget(), len(probe.Rotations()))

	encryptor := ckks.NewEncryptor(params, pk, rng)
	decryptor := ckks.NewDecryptor(params, sk)

	// A message at the exhausted level 0.
	msg := make([]complex128, params.Slots())
	for i := range msg {
		msg[i] = complex(0.3*float64(i%3)-0.3, 0)
	}
	ct, err := ckks.EncryptAtLevel(enc, encryptor, msg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input ciphertext: level %d (no multiplications left)\n", ct.Level)

	out, err := b.Bootstrap(ct)
	if err != nil {
		log.Fatal(err)
	}
	got := enc.Decode(decryptor.Decrypt(out))
	var worst float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("refreshed ciphertext: level %d, max error %.2e\n", out.Level, worst)
	fmt.Println("the ciphertext can multiply again — bootstrap complete")
}

// Encrypted logistic-regression inference, the core computation of the
// HELR1024 workload [24]: scores = sigmoid(X·w) are computed entirely
// under encryption — the feature matrix multiplies the encrypted weight
// vector with BSGS PtMatVecMult (Algorithm 1) and the sigmoid is a
// Chebyshev polynomial evaluated with HMult/CMult cascades — then
// decrypted and compared against the plaintext model.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"crophe/internal/boot"
	"crophe/internal/ckks"
)

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func main() {
	// 32 padded features (HELR pads 196 → 256; we scale down to keep the
	// example fast), one ciphertext carrying the weights.
	const features = 32
	params, err := ckks.TestParameters(6, 7, 2) // 32 slots, 7 levels
	if err != nil {
		log.Fatal(err)
	}
	if params.Slots() != features {
		log.Fatalf("parameter slots %d != features", params.Slots())
	}

	// A synthetic trained model and a batch row encoded as a matrix:
	// row j of X is one sample, so X·w gives every sample's logit at once.
	rng := rand.New(rand.NewSource(42))
	w := make([]complex128, features)
	for i := range w {
		w[i] = complex(rng.NormFloat64()*0.4, 0)
	}
	X := make([][]complex128, features)
	for j := range X {
		X[j] = make([]complex128, features)
		for i := range X[j] {
			X[j][i] = complex(rng.Float64(), 0) // pixel intensities in [0,1)
		}
	}
	lt, err := boot.NewLinearTransform(X)
	if err != nil {
		log.Fatal(err)
	}

	// Degree-7 sigmoid approximation on the logit range.
	sig := boot.FitChebyshev(sigmoid, -8, 8, 7)

	// Keys: BSGS rotations plus the hoisting strategy's baby steps.
	rotSet := map[int]bool{}
	for _, r := range lt.Rotations() {
		rotSet[r] = true
	}
	for _, r := range (boot.Hoisting{}).Keys(lt.N1) {
		rotSet[r] = true
	}
	var rotations []int
	for r := range rotSet {
		rotations = append(rotations, r)
	}
	// Key-generation order feeds the deterministic test PRNG; sort so
	// repeated runs produce identical keys and ciphertexts.
	sort.Ints(rotations)

	crand := ckks.NewTestRand(4242)
	kg := ckks.NewKeyGenerator(params, crand)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenEvaluationKeySet(sk, rotations)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, crand)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, keys)

	ctW, err := ckks.EncryptAtLevel(enc, encryptor, w, params.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}

	// Encrypted inference: logits = X·w, scores = sigmoid(logits).
	ctLogits, err := lt.Evaluate(eval, enc, ctW, boot.Hoisting{})
	if err != nil {
		log.Fatal(err)
	}
	ctScores, err := boot.EvaluateChebyshev(eval, sig, ctLogits)
	if err != nil {
		log.Fatal(err)
	}

	got := enc.Decode(decryptor.Decrypt(ctScores))

	// Plaintext reference.
	var worst float64
	agree := 0
	fmt.Println("sample  plaintext  encrypted  class")
	for j := 0; j < features; j++ {
		var logit float64
		for i := 0; i < features; i++ {
			logit += real(X[j][i]) * real(w[i])
		}
		want := sigmoid(logit)
		gotV := real(got[j])
		if e := math.Abs(gotV - want); e > worst {
			worst = e
		}
		if (gotV > 0.5) == (want > 0.5) {
			agree++
		}
		if j < 6 {
			fmt.Printf("%5d %10.4f %10.4f  %v\n", j, want, gotV, gotV > 0.5)
		}
	}
	fmt.Printf("...\nmax score error %.2e, class agreement %d/%d\n", worst, agree, features)
	fmt.Printf("levels consumed: %d → %d (matvec 1, sigmoid %d)\n",
		params.MaxLevel(), ctScores.Level, params.MaxLevel()-1-ctScores.Level)
	if agree != features {
		log.Fatal("encrypted inference disagrees with plaintext model")
	}
}
